//! Live SLO evaluation: multi-window burn-rate monitors in the SRE style.
//!
//! An objective ("99.9% of admitted requests answered", "p99 latency under
//! 50ms") defines an *error budget* — the fraction of requests allowed to
//! violate it. The engine watches two request-counted sliding windows (a
//! fast one that reacts quickly and a slow one that filters blips) and
//! computes each window's **burn rate**: observed violation rate divided
//! by budget. Both windows over the warn threshold raises a warning; both
//! over the page threshold pages; dropping back below warn on both
//! recovers. Windows are counted in requests, not wall-clock seconds, for
//! the same reason the circuit breaker counts cooldown in requests: the
//! whole event sequence becomes a pure function of the request/outcome
//! order, which is what lets chaos tests replay it bit-identically.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Severity of one SLO state change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloLevel {
    /// Both windows burn above the warn threshold.
    Warn,
    /// Both windows burn above the page threshold.
    Page,
    /// A previously warned/paged monitor dropped below the warn threshold.
    Recovered,
}

impl SloLevel {
    /// Stable label for reports and JSONL.
    pub fn label(&self) -> &'static str {
        match self {
            SloLevel::Warn => "warn",
            SloLevel::Page => "page",
            SloLevel::Recovered => "recovered",
        }
    }

    /// Parses [`SloLevel::label`] output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "warn" => Some(SloLevel::Warn),
            "page" => Some(SloLevel::Page),
            "recovered" => Some(SloLevel::Recovered),
            _ => None,
        }
    }
}

/// Which objective a monitor tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloMonitor {
    /// Fraction of admitted requests answered (primary or degraded).
    Availability,
    /// Fraction of answered requests within the latency objective.
    Latency,
}

impl SloMonitor {
    /// Stable label for reports and JSONL.
    pub fn label(&self) -> &'static str {
        match self {
            SloMonitor::Availability => "availability",
            SloMonitor::Latency => "latency",
        }
    }

    /// Parses [`SloMonitor::label`] output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "availability" => Some(SloMonitor::Availability),
            "latency" => Some(SloMonitor::Latency),
            _ => None,
        }
    }
}

/// One recorded SLO state transition, tagged with the outcome sequence
/// number at which it fired — the SLO analogue of a breaker `Transition`
/// or a `SwapTransition`. Same-seed chaos runs must produce equal event
/// sequences.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloEvent {
    /// Count of outcomes recorded when the event fired (1-based).
    pub seq: u64,
    /// The monitor that changed state.
    pub monitor: SloMonitor,
    /// New severity.
    pub level: SloLevel,
    /// Fast-window burn rate at the moment of the event.
    pub fast_burn: f64,
    /// Slow-window burn rate at the moment of the event.
    pub slow_burn: f64,
}

/// Objectives and alerting thresholds. Parsed from the `--slo` CLI spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Availability objective: fraction of admitted requests that must be
    /// answered (e.g. `0.999`).
    pub availability: f64,
    /// Latency objective: answered requests should finish within this
    /// many nanoseconds at [`SloSpec::latency_quantile`]. `None` disables
    /// the latency monitor.
    pub latency_ns: Option<u64>,
    /// The quantile the latency objective applies to (e.g. `0.99`).
    pub latency_quantile: f64,
    /// Fast window size in requests.
    pub fast_window: usize,
    /// Slow window size in requests.
    pub slow_window: usize,
    /// Burn rate at which both windows raise a warning.
    pub warn_burn: f64,
    /// Burn rate at which both windows page.
    pub page_burn: f64,
    /// Outcomes that must be observed before any event can fire; damps
    /// the first few requests where one bad outcome dominates the rate.
    pub min_samples: usize,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            availability: 0.999,
            latency_ns: None,
            latency_quantile: 0.99,
            fast_window: 1_000,
            slow_window: 10_000,
            warn_burn: 2.0,
            page_burn: 10.0,
            min_samples: 100,
        }
    }
}

impl SloSpec {
    /// Parses a comma-separated `key=value` spec, e.g.
    /// `avail=0.999,p99-ms=50,fast=1000,slow=10000,warn=2,page=10,min=100`.
    /// Unspecified keys keep their defaults; an empty string is the
    /// default spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("slo spec: expected key=value, got '{part}'"))?;
            let bad = |k: &str| format!("slo spec: invalid value for '{k}': '{value}'");
            match key {
                "avail" => {
                    let v: f64 = value.parse().map_err(|_| bad(key))?;
                    if !(0.0..1.0).contains(&v) {
                        return Err(format!("slo spec: avail must be in [0,1), got {v}"));
                    }
                    out.availability = v;
                }
                "p99-ms" => {
                    let v: f64 = value.parse().map_err(|_| bad(key))?;
                    if v <= 0.0 || v.is_nan() {
                        return Err(format!("slo spec: p99-ms must be positive, got {v}"));
                    }
                    out.latency_ns = Some((v * 1e6) as u64);
                    out.latency_quantile = 0.99;
                }
                "fast" => out.fast_window = value.parse().map_err(|_| bad(key))?,
                "slow" => out.slow_window = value.parse().map_err(|_| bad(key))?,
                "warn" => out.warn_burn = value.parse().map_err(|_| bad(key))?,
                "page" => out.page_burn = value.parse().map_err(|_| bad(key))?,
                "min" => out.min_samples = value.parse().map_err(|_| bad(key))?,
                other => return Err(format!("slo spec: unknown key '{other}'")),
            }
        }
        if out.fast_window == 0 || out.slow_window == 0 {
            return Err("slo spec: windows must be positive".to_string());
        }
        if out.warn_burn > out.page_burn {
            return Err("slo spec: warn burn must not exceed page burn".to_string());
        }
        Ok(out)
    }

    /// Error budget of the availability objective.
    fn availability_budget(&self) -> f64 {
        (1.0 - self.availability).max(f64::MIN_POSITIVE)
    }

    /// Error budget of the latency objective.
    fn latency_budget(&self) -> f64 {
        (1.0 - self.latency_quantile).max(f64::MIN_POSITIVE)
    }
}

/// Fixed-capacity sliding window counting violating outcomes.
#[derive(Debug)]
struct SlidingWindow {
    ring: Vec<bool>,
    head: usize,
    len: usize,
    bad: usize,
}

impl SlidingWindow {
    fn new(capacity: usize) -> Self {
        Self { ring: vec![false; capacity.max(1)], head: 0, len: 0, bad: 0 }
    }

    fn push(&mut self, violation: bool) {
        let capacity = self.ring.len();
        // pup-audit: allow(hotpath-panic): capacity >= 1 from new() and head is reduced modulo it.
        let slot = &mut self.ring[self.head % capacity];
        if self.len == capacity && *slot {
            self.bad -= 1;
        }
        *slot = violation;
        if violation {
            self.bad += 1;
        }
        // pup-audit: allow(hotpath-panic): capacity >= 1 from new().
        self.head = (self.head + 1) % capacity;
        if self.len < capacity {
            self.len += 1;
        }
    }

    fn violation_rate(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.bad as f64 / self.len as f64
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Level {
    Ok,
    Warn,
    Page,
}

struct MonitorState {
    monitor: SloMonitor,
    budget: f64,
    fast: SlidingWindow,
    slow: SlidingWindow,
    level: Level,
}

impl MonitorState {
    fn new(monitor: SloMonitor, budget: f64, spec: &SloSpec) -> Self {
        Self {
            monitor,
            budget,
            fast: SlidingWindow::new(spec.fast_window),
            slow: SlidingWindow::new(spec.slow_window),
            level: Level::Ok,
        }
    }

    /// Feeds one outcome and returns the event this transition emits, if
    /// any.
    fn record(&mut self, violation: bool, seq: u64, spec: &SloSpec) -> Option<SloEvent> {
        self.fast.push(violation);
        self.slow.push(violation);
        if self.fast.len < spec.min_samples.min(self.fast.ring.len()) {
            return None;
        }
        // pup-audit: allow(hotpath-panic): f64 division saturates, it never panics.
        let fast_burn = self.fast.violation_rate() / self.budget;
        // pup-audit: allow(hotpath-panic): f64 division saturates, it never panics.
        let slow_burn = self.slow.violation_rate() / self.budget;
        let level = if fast_burn >= spec.page_burn && slow_burn >= spec.page_burn {
            Level::Page
        } else if fast_burn >= spec.warn_burn && slow_burn >= spec.warn_burn {
            Level::Warn
        } else {
            Level::Ok
        };
        if level == self.level {
            return None;
        }
        let previous = self.level;
        self.level = level;
        let event_level = match level {
            Level::Page => SloLevel::Page,
            Level::Warn => SloLevel::Warn,
            Level::Ok => {
                debug_assert!(previous != Level::Ok);
                SloLevel::Recovered
            }
        };
        Some(SloEvent { seq, monitor: self.monitor, level: event_level, fast_burn, slow_burn })
    }
}

struct EngineInner {
    seq: u64,
    availability: MonitorState,
    latency: Option<MonitorState>,
    events: Vec<SloEvent>,
    pages: u64,
}

/// Online SLO engine: feed it one outcome per admitted request, in
/// completion order, and it maintains the burn-rate state machines and
/// the event log.
pub struct SloEngine {
    spec: SloSpec,
    inner: Mutex<EngineInner>,
}

/// Poisoned-lock recovery: the engine holds counters and a log with no
/// invariants spanning the lock; a wedged SLO monitor must never take the
/// serving path down with it.
fn locked(inner: &Mutex<EngineInner>) -> MutexGuard<'_, EngineInner> {
    inner.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SloEngine {
    /// An engine with all monitors at OK.
    pub fn new(spec: SloSpec) -> Self {
        let latency = spec
            .latency_ns
            .map(|_| MonitorState::new(SloMonitor::Latency, spec.latency_budget(), &spec));
        Self {
            inner: Mutex::new(EngineInner {
                seq: 0,
                availability: MonitorState::new(
                    SloMonitor::Availability,
                    spec.availability_budget(),
                    &spec,
                ),
                latency,
                events: Vec::new(),
                pages: 0,
            }),
            spec,
        }
    }

    /// The spec this engine evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Records the terminal outcome of one admitted request: whether it
    /// was answered, and (for answered requests) its latency. Returns the
    /// highest-severity event this outcome emitted, if any.
    pub fn record_outcome(&self, answered: bool, latency_ns: Option<u64>) -> Option<SloLevel> {
        let mut inner = locked(&self.inner);
        inner.seq += 1;
        let seq = inner.seq;
        let spec = self.spec;
        let mut emitted: Option<SloLevel> = None;
        let mut push = |events: &mut Vec<SloEvent>, pages: &mut u64, event: SloEvent| {
            if event.level == SloLevel::Page {
                *pages += 1;
            }
            let rank = |l: SloLevel| match l {
                SloLevel::Page => 2,
                SloLevel::Warn => 1,
                SloLevel::Recovered => 0,
            };
            if emitted.is_none_or(|prev| rank(event.level) > rank(prev)) {
                emitted = Some(event.level);
            }
            events.push(event);
        };
        let EngineInner { availability, latency, events, pages, .. } = &mut *inner;
        if let Some(event) = availability.record(!answered, seq, &spec) {
            push(events, pages, event);
        }
        if let (Some(monitor), Some(objective)) = (latency.as_mut(), spec.latency_ns) {
            // Latency only judges requests that produced an answer; a
            // rejection is already charged to the availability monitor.
            if let Some(ns) = latency_ns.filter(|_| answered) {
                if let Some(event) = monitor.record(ns > objective, seq, &spec) {
                    push(events, pages, event);
                }
            }
        }
        emitted
    }

    /// The full event log so far, in emission order.
    pub fn events(&self) -> Vec<SloEvent> {
        locked(&self.inner).events.clone()
    }

    /// Total page-level events emitted.
    pub fn page_count(&self) -> u64 {
        locked(&self.inner).pages
    }

    /// Monitors currently stuck at page severity — the CI gate requires
    /// this to be zero at the end of a run.
    pub fn unrecovered_pages(&self) -> u64 {
        let inner = locked(&self.inner);
        let mut n = 0;
        if inner.availability.level == Level::Page {
            n += 1;
        }
        if inner.latency.as_ref().is_some_and(|l| l.level == Level::Page) {
            n += 1;
        }
        n
    }

    /// Outcomes recorded so far.
    pub fn outcomes(&self) -> u64 {
        locked(&self.inner).seq
    }
}

/// Replays an event log to the set of monitors still at page severity —
/// used by `pup slo-report`, which only has the JSONL, not the engine.
pub fn unrecovered_from_events(events: &[SloEvent]) -> Vec<SloMonitor> {
    let mut avail = false;
    let mut latency = false;
    for event in events {
        let flag = match event.monitor {
            SloMonitor::Availability => &mut avail,
            SloMonitor::Latency => &mut latency,
        };
        *flag = event.level == SloLevel::Page;
    }
    let mut out = Vec::new();
    if avail {
        out.push(SloMonitor::Availability);
    }
    if latency {
        out.push(SloMonitor::Latency);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_spec() -> SloSpec {
        SloSpec {
            availability: 0.9,
            latency_ns: Some(1_000),
            latency_quantile: 0.9,
            fast_window: 4,
            slow_window: 8,
            warn_burn: 1.0,
            page_burn: 2.0,
            min_samples: 2,
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let spec = SloSpec::parse("avail=0.99,p99-ms=50,fast=100,slow=400,warn=1.5,page=4,min=10")
            .expect("valid spec");
        assert_eq!(spec.availability, 0.99);
        assert_eq!(spec.latency_ns, Some(50_000_000));
        assert_eq!((spec.fast_window, spec.slow_window), (100, 400));
        assert_eq!((spec.warn_burn, spec.page_burn), (1.5, 4.0));
        assert_eq!(spec.min_samples, 10);
        assert_eq!(SloSpec::parse("").expect("empty is default"), SloSpec::default());
        assert!(SloSpec::parse("avail=1.5").is_err());
        assert!(SloSpec::parse("bogus=1").is_err());
        assert!(SloSpec::parse("warn=5,page=2").is_err());
        assert!(SloSpec::parse("no-equals").is_err());
    }

    #[test]
    fn pages_then_recovers_on_availability() {
        let engine = SloEngine::new(SloSpec { latency_ns: None, ..tight_spec() });
        // Budget is 0.1; two rejections in a 4-window is rate 0.5 = burn 5.
        assert_eq!(engine.record_outcome(true, Some(10)), None);
        assert_eq!(engine.record_outcome(false, None), Some(SloLevel::Page));
        assert_eq!(engine.unrecovered_pages(), 1);
        // Enough good outcomes to flush both windows back under warn.
        let mut recovered = false;
        for _ in 0..8 {
            if engine.record_outcome(true, Some(10)) == Some(SloLevel::Recovered) {
                recovered = true;
            }
        }
        assert!(recovered, "events: {:?}", engine.events());
        assert_eq!(engine.unrecovered_pages(), 0);
        assert_eq!(engine.page_count(), 1);
        let events = engine.events();
        assert_eq!(
            events.first().map(|e| (e.monitor, e.level)),
            Some((SloMonitor::Availability, SloLevel::Page))
        );
        assert_eq!(events.last().map(|e| e.level), Some(SloLevel::Recovered));
    }

    #[test]
    fn latency_monitor_judges_only_answered_requests() {
        let engine = SloEngine::new(tight_spec());
        // Slow answers violate the 1µs objective; budget 0.1.
        engine.record_outcome(true, Some(10));
        let level = engine.record_outcome(true, Some(5_000));
        assert_eq!(level, Some(SloLevel::Page));
        let events = engine.events();
        assert!(events.iter().all(|e| e.monitor == SloMonitor::Latency));
        // A rejection does not feed the latency windows.
        let before = events.len();
        engine.record_outcome(false, None);
        let after: Vec<_> = engine
            .events()
            .into_iter()
            .skip(before)
            .filter(|e| e.monitor == SloMonitor::Latency)
            .collect();
        assert!(after.is_empty());
    }

    #[test]
    fn event_sequence_is_deterministic_for_identical_outcomes() {
        let run = || {
            let engine = SloEngine::new(tight_spec());
            for i in 0..64u64 {
                let answered = i % 7 != 3;
                let latency = answered.then_some(if i % 11 == 0 { 9_000 } else { 100 });
                engine.record_outcome(answered, latency);
            }
            engine.events()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unrecovered_from_events_replays_final_state() {
        let mk =
            |monitor, level, seq| SloEvent { seq, monitor, level, fast_burn: 0.0, slow_burn: 0.0 };
        let events = vec![
            mk(SloMonitor::Availability, SloLevel::Page, 1),
            mk(SloMonitor::Latency, SloLevel::Page, 2),
            mk(SloMonitor::Availability, SloLevel::Recovered, 3),
        ];
        assert_eq!(unrecovered_from_events(&events), vec![SloMonitor::Latency]);
        assert!(unrecovered_from_events(&[]).is_empty());
    }
}
