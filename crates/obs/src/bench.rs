//! Append-only benchmark trajectory files and regression diffing.
//!
//! `BENCH_<target>.json` files record one entry per bench run, newest
//! last (`pup-bench/2`), so a regression shows up as history instead of
//! silently overwriting the baseline. The writer lives in `pup-bench`
//! (it consumes Criterion results); this module owns the schema's read
//! side and the last-two-entries diff that `pup bench-diff` and CI
//! gates consume. The legacy single-run `pup-bench/1` schema loads as a
//! trajectory with a single entry 0.

use crate::json::Value;

/// One measured benchmark case inside a [`BenchEntry`].
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCase {
    /// Criterion group the case belongs to.
    pub group: String,
    /// Case name within the group.
    pub name: String,
    /// Median wall-clock nanoseconds per invocation.
    pub median_ns: u64,
    /// Fastest timed run.
    pub min_ns: u64,
    /// Slowest timed run.
    pub max_ns: u64,
    /// Timed runs behind the statistics (warm-up excluded).
    pub samples: u64,
}

/// One bench run's worth of cases in a [`BenchTrajectory`].
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Position in the trajectory, 0-based and append-ordered.
    pub seq: u64,
    /// Cases measured by this run, in run order.
    pub cases: Vec<BenchCase>,
}

/// The append-only history a `BENCH_<target>.json` file accumulates.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchTrajectory {
    /// Bench target (`serving`, `training`, ...).
    pub target: String,
    /// Every recorded run, oldest first.
    pub entries: Vec<BenchEntry>,
}

/// Regression verdict for one case across the last two trajectory entries.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseDiff {
    /// Criterion group of the compared case.
    pub group: String,
    /// Case name within the group.
    pub name: String,
    /// Median of the previous entry, nanoseconds; `None` if the case is new.
    pub before_ns: Option<u64>,
    /// Median of the latest entry, nanoseconds; `None` if the case vanished.
    pub after_ns: Option<u64>,
    /// `after / before` where both sides exist: >1 is a slowdown.
    pub ratio: Option<f64>,
}

impl CaseDiff {
    /// Whether this case slowed down past the given threshold
    /// (e.g. `0.10` = fail on a >10% median regression).
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio.is_some_and(|r| r > 1.0 + threshold)
    }
}

/// Parses a `BENCH_<target>.json` file into its trajectory. Both schemas
/// load: `pup-bench/2` natively, `pup-bench/1` as a single entry 0.
pub fn read_bench_trajectory(path: &std::path::Path) -> Result<BenchTrajectory, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_bench_trajectory_str(&text)
}

/// [`read_bench_trajectory`] over already-loaded text.
pub fn read_bench_trajectory_str(text: &str) -> Result<BenchTrajectory, String> {
    let doc = Value::parse(text)?;
    let target = doc
        .get("target")
        .and_then(Value::as_str)
        .ok_or_else(|| "bench json lacks a `target`".to_string())?
        .to_string();
    let entries = match doc.get("schema").and_then(Value::as_str) {
        Some("pup-bench/1") => vec![BenchEntry { seq: 0, cases: parse_cases(&doc)? }],
        Some("pup-bench/2") => match doc.get("entries") {
            Some(Value::Arr(arr)) => arr
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    Ok(BenchEntry {
                        seq: e.get("seq").and_then(Value::as_u64).unwrap_or(i as u64),
                        cases: parse_cases(e)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("pup-bench/2 json lacks an `entries` array".to_string()),
        },
        other => return Err(format!("unsupported bench schema {other:?}")),
    };
    Ok(BenchTrajectory { target, entries })
}

fn parse_cases(obj: &Value) -> Result<Vec<BenchCase>, String> {
    let arr = match obj.get("cases") {
        Some(Value::Arr(a)) => a,
        _ => return Err("bench json entry lacks a `cases` array".to_string()),
    };
    arr.iter()
        .map(|c| {
            let field = |k: &str| {
                c.get(k).and_then(Value::as_u64).ok_or_else(|| format!("case lacks `{k}`"))
            };
            Ok(BenchCase {
                group: c.get("group").and_then(Value::as_str).unwrap_or_default().to_string(),
                name: c
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "case lacks `name`".to_string())?
                    .to_string(),
                median_ns: field("median_ns")?,
                min_ns: field("min_ns")?,
                max_ns: field("max_ns")?,
                samples: field("samples")?,
            })
        })
        .collect()
}

/// Compares the last two entries of a trajectory case by case. Cases are
/// matched on `(group, name)`; ones present on only one side report a
/// one-sided diff with no ratio. Errors if the trajectory holds fewer than
/// two entries — there is nothing to diff yet.
pub fn diff_last_two(traj: &BenchTrajectory) -> Result<Vec<CaseDiff>, String> {
    let n = traj.entries.len();
    if n < 2 {
        return Err(format!(
            "need at least two bench entries to diff, found {n}; run the bench again to append one"
        ));
    }
    let before = &traj.entries[n - 2].cases;
    let after = &traj.entries[n - 1].cases;
    let mut diffs: Vec<CaseDiff> = after
        .iter()
        .map(|a| {
            let prev = before.iter().find(|b| b.group == a.group && b.name == a.name);
            CaseDiff {
                group: a.group.clone(),
                name: a.name.clone(),
                before_ns: prev.map(|b| b.median_ns),
                after_ns: Some(a.median_ns),
                ratio: prev.map(|b| a.median_ns as f64 / (b.median_ns.max(1)) as f64),
            }
        })
        .collect();
    for b in before {
        if !after.iter().any(|a| a.group == b.group && a.name == b.name) {
            diffs.push(CaseDiff {
                // pup-lint: allow(clone-in-loop) — one small string pair per vanished case.
                group: b.group.clone(),
                // pup-lint: allow(clone-in-loop)
                name: b.name.clone(),
                before_ns: Some(b.median_ns),
                after_ns: None,
                ratio: None,
            });
        }
    }
    Ok(diffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_matches_cases_and_reports_one_sided_entries() {
        let case = |name: &str, median_ns: u64| BenchCase {
            group: "g".to_string(),
            name: name.to_string(),
            median_ns,
            min_ns: median_ns,
            max_ns: median_ns,
            samples: 3,
        };
        let traj = BenchTrajectory {
            target: "t".to_string(),
            entries: vec![
                BenchEntry { seq: 0, cases: vec![case("stable", 100), case("gone", 50)] },
                BenchEntry { seq: 1, cases: vec![case("stable", 130), case("new", 10)] },
            ],
        };
        let diffs = diff_last_two(&traj).expect("diffs");
        assert_eq!(diffs.len(), 3);
        let stable = diffs.iter().find(|d| d.name == "stable").expect("stable");
        assert!(stable.regressed(0.25), "30% slower trips a 25% threshold");
        assert!(!stable.regressed(0.35));
        let new = diffs.iter().find(|d| d.name == "new").expect("new");
        assert_eq!((new.before_ns, new.after_ns), (None, Some(10)));
        assert!(!new.regressed(0.0), "a new case cannot regress");
        let gone = diffs.iter().find(|d| d.name == "gone").expect("gone");
        assert_eq!((gone.before_ns, gone.after_ns), (Some(50), None));
    }

    #[test]
    fn single_entry_trajectory_refuses_to_diff() {
        let traj = BenchTrajectory {
            target: "t".to_string(),
            entries: vec![BenchEntry { seq: 0, cases: vec![] }],
        };
        assert!(diff_last_two(&traj).unwrap_err().contains("at least two"));
    }
}
