//! Minimal JSON value model, writer, and parser.
//!
//! The telemetry sink emits line-framed JSON and `pup report-telemetry`
//! parses it back; the build environment has no serde, so this module
//! hand-rolls the subset of JSON the schema needs (objects, arrays,
//! strings with escapes, IEEE-754 numbers, booleans, null). Numbers are
//! written with Rust's shortest-round-trip `Display`, so a value survives
//! a write/parse cycle bit-exactly. Non-finite numbers serialize as
//! `null` (JSON has no NaN/Inf) and parse back as `NaN`.

use std::fmt::Write as _;

/// A parsed or to-be-serialized JSON value. Object keys keep insertion
/// order so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered key/value list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build a number value; non-finite floats map to `Null`.
    pub fn num(v: f64) -> Value {
        if v.is_finite() {
            Value::Num(v)
        } else {
            Value::Null
        }
    }

    /// Build a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view; `Null` reads as `NaN` (the writer's non-finite encoding).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Non-negative integer view (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // pup-lint: allow(float-eq) — exact integrality test, not a tolerance bug.
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007_199_254_740_992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Serialize to compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // pup-lint: allow(as-cast-truncation) — char to u32 is lossless
            c if (c as u32) < 0x20 => {
                // pup-lint: allow(as-cast-truncation) — char to u32 is lossless
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn require(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number bytes at {start}"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary-to-boundary step).
                    let rest = &self.bytes[self.pos..];
                    let step = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..step.min(rest.len())])
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.require(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.require(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.require(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let v = Value::Obj(vec![
            ("t".to_string(), Value::str("span")),
            ("id".to_string(), Value::num(7.0)),
            ("parent".to_string(), Value::Null),
            ("ok".to_string(), Value::Bool(true)),
            ("xs".to_string(), Value::Arr(vec![Value::num(1.5), Value::str("a\"b\\c\nd")])),
        ]);
        let text = v.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, 1e-300, -0.0, 12345.0] {
            let text = Value::Num(x).render();
            let back = Value::parse(&text).unwrap();
            match back {
                Value::Num(y) => assert!(y == x || (x == 0.0 && y == 0.0), "{text}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_serializes_as_null_and_reads_as_nan() {
        assert_eq!(Value::num(f64::NAN), Value::Null);
        assert_eq!(Value::num(f64::INFINITY).render(), "null");
        let parsed = Value::parse("null").unwrap();
        assert!(parsed.as_f64().unwrap().is_nan());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("\"open").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Value::str("héllo → wörld\t\u{1}");
        let back = Value::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn object_get_and_views() {
        let v = Value::parse(r#"{"name":"epoch","n":3,"x":1.5}"#).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("epoch"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("x").and_then(Value::as_u64), None);
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(1.5));
        assert!(v.get("missing").is_none());
    }
}
