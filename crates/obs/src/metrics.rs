//! Metric primitives: fixed-bucket histograms and gauge statistics.
//!
//! Histograms use a fixed log-spaced bucket layout (a 1-2-5 series spanning
//! `1e-9 ..= 1e12`) so that a single scheme covers both nanosecond timings
//! and unit-scale training metrics without per-histogram configuration.
//! Quantiles are answered by linear interpolation *within* the bucket the
//! rank falls in, with the interpolation range clamped to the observed
//! `[min, max]` — that keeps the empty / single-sample / saturating edge
//! cases exact (see the unit tests at the bottom of this file) while
//! avoiding the up-to-2.5× error of snapping to a 1-2-5 bucket bound,
//! which matters at serve-latency scale where p99 gates a CI check.
//!
//! Histograms can also carry **tail exemplars**: when an observation is
//! tagged with a trace id ([`Histogram::observe_traced`]), each bucket
//! remembers the slowest observation that landed in it, so a report can
//! jump from a p99 bucket straight to the stitched trace of the request
//! that produced it.

use std::sync::OnceLock;

/// Smallest decade covered by the shared bucket layout (`1e-9`).
const DECADE_MIN: i32 = -9;
/// Largest decade covered by the shared bucket layout (`1e12`).
const DECADE_MAX: i32 = 12;
/// Sub-decade steps of the 1-2-5 series.
const STEPS: [f64; 3] = [1.0, 2.0, 5.0];

/// Upper bounds of the shared bucket layout, ascending. Values above the
/// last bound land in a final overflow bucket.
pub fn bucket_bounds() -> &'static [f64] {
    static BOUNDS: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut bounds = Vec::new();
        for decade in DECADE_MIN..=DECADE_MAX {
            for step in STEPS {
                bounds.push(step * 10f64.powi(decade));
            }
        }
        bounds
    })
}

/// Summary statistics exported for a histogram (what the JSONL sink writes).
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Median estimate (bucket upper bound clamped to `[min, max]`).
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl HistSummary {
    /// Arithmetic mean of the observations (exact: `sum / count`, unlike
    /// the bucket-estimated quantiles).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The slowest traced observation that landed in one bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Upper bound of the bucket, or `None` for the overflow bucket.
    pub le: Option<f64>,
    /// The observed value.
    pub value: f64,
    /// Trace id the observation was tagged with.
    pub trace: u64,
}

/// A fixed-bucket histogram over the shared 1-2-5 log layout.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Per-bucket `(value, trace)` of the largest traced observation;
    /// empty until the first [`Histogram::observe_traced`] call so
    /// untraced histograms pay nothing.
    exemplars: Vec<Option<(f64, u64)>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; bucket_bounds().len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            exemplars: Vec::new(),
        }
    }

    /// Record one observation. Values at or below the smallest bound land in
    /// the first bucket; values above the largest bound land in the overflow
    /// bucket (quantiles still report exact extremes via the min/max clamp).
    /// `NaN` is treated as `0.0` so a poisoned metric cannot poison the sink.
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_nan() { 0.0 } else { value };
        let idx = Self::bucket_index(v);
        // pup-audit: allow(hotpath-panic): partition_point over bounds is at most bounds.len(); counts has one overflow slot
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// [`Histogram::observe`], additionally tagging the observation with a
    /// trace id so its bucket can retain it as a tail exemplar. Each bucket
    /// keeps the largest traced value seen.
    pub fn observe_traced(&mut self, value: f64, trace: u64) {
        self.observe(value);
        let v = if value.is_nan() { 0.0 } else { value };
        let idx = Self::bucket_index(v);
        if self.exemplars.is_empty() {
            self.exemplars = vec![None; self.counts.len()];
        }
        // pup-audit: allow(hotpath-panic): bucket_index is bounded by the layout; exemplars was just sized to match counts
        let slot = &mut self.exemplars[idx];
        if slot.is_none_or(|(existing, _)| v > existing) {
            *slot = Some((v, trace));
        }
    }

    /// Tail exemplars in bucket order: the slowest traced observation per
    /// bucket. Empty unless [`Histogram::observe_traced`] was used.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let bounds = bucket_bounds();
        self.exemplars
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                slot.map(|(value, trace)| Exemplar { le: bounds.get(idx).copied(), value, trace })
            })
            .collect()
    }

    /// Bucket index for a (NaN-sanitized) value.
    fn bucket_index(v: f64) -> usize {
        bucket_bounds().partition_point(|&b| b < v)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Quantile estimate for `q` in `[0, 1]`, or `None` for an empty
    /// histogram. The rank is located in its bucket and the answer is
    /// linearly interpolated within that bucket, with the interpolation
    /// range clamped to the observed `[min, max]` — so a single-sample
    /// histogram reports that sample exactly, an overflow-saturated
    /// histogram reports the true max, and a rank deep inside a wide
    /// 1-2-5 bucket no longer snaps to the bucket's upper bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let bounds = bucket_bounds();
        let mut cumulative = 0u64;
        for (idx, n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= target && *n > 0 {
                let upper = bounds.get(idx).copied().unwrap_or(f64::INFINITY).min(self.max);
                let lower = if idx == 0 { self.min } else { bounds[idx - 1].max(self.min) };
                let lower = lower.min(upper);
                let before = cumulative - n;
                let frac = (target - before) as f64 / *n as f64;
                return Some((lower + frac * (upper - lower)).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Export the summary the sinks serialize, or `None` if empty.
    pub fn summary(&self) -> Option<HistSummary> {
        if self.count == 0 {
            return None;
        }
        Some(HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50)?,
            p95: self.quantile(0.95)?,
            p99: self.quantile(0.99)?,
        })
    }
}

/// Last/min/max/n statistics for a gauge (a set-valued metric).
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeStat {
    /// Most recently set value.
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of times the gauge was set.
    pub n: u64,
}

impl GaugeStat {
    /// Stat for a gauge observed once with `value`.
    pub fn first(value: f64) -> Self {
        GaugeStat { last: value, min: value, max: value, n: 1 }
    }

    /// Fold in a new setting of the gauge.
    pub fn set(&mut self, value: f64) {
        self.last = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert!(h.summary().is_none());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.observe(3.7);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, 3.7);
        assert_eq!(s.p95, 3.7);
        assert_eq!(s.p99, 3.7);
        assert_eq!(s.min, 3.7);
        assert_eq!(s.max, 3.7);
    }

    #[test]
    fn saturating_values_clamp_to_observed_max() {
        let mut h = Histogram::new();
        // Far above the last bucket bound of 5e12.
        h.observe(9.0e30);
        h.observe(8.0e30);
        let s = h.summary().unwrap();
        assert_eq!(s.p99, 9.0e30);
        assert_eq!(s.max, 9.0e30);
        assert_eq!(s.min, 8.0e30);
    }

    #[test]
    fn underflow_and_negative_values_clamp_to_observed_min() {
        let mut h = Histogram::new();
        h.observe(-2.5);
        h.observe(0.0);
        // Both samples collapse into the underflow bucket; quantile
        // estimates stay inside the observed range.
        let s = h.summary().unwrap();
        assert_eq!(s.min, -2.5);
        assert_eq!(s.max, 0.0);
        for q in [s.p50, s.p95, s.p99] {
            assert!((-2.5..=0.0).contains(&q), "quantile {q} outside observed range");
        }
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn nan_is_folded_to_zero_not_propagated() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(4.0);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 2);
        assert!(s.sum.is_finite());
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn quantiles_order_on_spread_data() {
        let mut h = Histogram::new();
        for i in 1..=1000u32 {
            h.observe(f64::from(i));
        }
        let s = h.summary().unwrap();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p50 >= 400.0 && s.p50 <= 600.0, "p50 {}", s.p50);
        assert!(s.p99 >= 900.0, "p99 {}", s.p99);
        assert_eq!(s.count, 1000);
    }

    #[test]
    fn interpolated_quantiles_beat_bucket_bound_snapping() {
        // Uniform 1..=1000: the exact k-th percentile is k*10. The old
        // estimator snapped to the bucket upper bound (1000 for any rank
        // inside the (500, 1000] bucket — a 10-unit error at p99 and a
        // 300-unit error at p70); interpolation pins them near-exactly.
        let mut h = Histogram::new();
        for i in 1..=1000u32 {
            h.observe(f64::from(i));
        }
        let cases = [(0.50, 500.0), (0.70, 700.0), (0.95, 950.0), (0.99, 990.0)];
        for (q, exact) in cases {
            let est = h.quantile(q).unwrap();
            let err = (est - exact).abs();
            assert!(err <= 5.0, "q={q}: estimate {est} vs exact {exact} (err {err})");
        }
        // Regression pin: bucket-bound snapping would report 1000.0 at
        // p70 (error 300); interpolation must stay under 1% of range.
        assert!((h.quantile(0.70).unwrap() - 700.0).abs() < 10.0);
    }

    #[test]
    fn traced_observations_retain_tail_exemplars() {
        let mut h = Histogram::new();
        h.observe(3.0); // untraced: no exemplar
        h.observe_traced(30.0, 7);
        h.observe_traced(45.0, 8); // same bucket (20, 50], slower — wins
        h.observe_traced(0.4, 9);
        let ex = h.exemplars();
        assert_eq!(ex.len(), 2);
        let slow = ex.iter().find(|e| e.value == 45.0).expect("slow exemplar");
        assert_eq!(slow.trace, 8);
        assert_eq!(slow.le, Some(50.0));
        let fast = ex.iter().find(|e| e.value == 0.4).expect("fast exemplar");
        assert_eq!(fast.trace, 9);
        assert_eq!(fast.le, Some(0.5));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn overflow_exemplar_has_no_upper_bound() {
        let mut h = Histogram::new();
        h.observe_traced(9.0e30, 3);
        let ex = h.exemplars();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].le, None);
        assert_eq!(ex[0].trace, 3);
    }

    #[test]
    fn gauge_tracks_last_min_max() {
        let mut g = GaugeStat::first(2.0);
        g.set(5.0);
        g.set(1.0);
        assert_eq!(g.last, 1.0);
        assert_eq!(g.min, 1.0);
        assert_eq!(g.max, 5.0);
        assert_eq!(g.n, 3);
    }

    #[test]
    fn bucket_bounds_are_sorted_and_positive() {
        let b = bucket_bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b[0] > 0.0);
    }
}
