//! Integration tests for pup-obs: span nesting and unbalanced-guard
//! behavior, JSONL round-trip through the report-telemetry parser, and
//! determinism of event ordering across identical runs.

use pup_obs::{report, Telemetry};

/// A fixed synthetic workload; called twice by the determinism test.
fn workload() -> Telemetry {
    pup_obs::start();
    {
        let _fit = pup_obs::span("fit");
        for epoch in 0..3u32 {
            let _e = pup_obs::span("epoch");
            for _ in 0..4 {
                let _t = pup_obs::time("fwd", "spmm");
                pup_obs::counter_add("sampler.draws", 8);
            }
            pup_obs::counter_add("sampler.rejections", 2);
            pup_obs::record("train.epoch_loss", 0.7 - 0.1 * f64::from(epoch));
            pup_obs::gauge_set("train.grad_norm", 0.5 + f64::from(epoch));
        }
    }
    pup_obs::finish()
}

#[test]
fn spans_nest_with_correct_parentage() {
    pup_obs::start();
    {
        let _a = pup_obs::span("a");
        {
            let _b = pup_obs::span("b");
            let _c = pup_obs::span("c");
        }
        let _d = pup_obs::span("d");
    }
    let t = pup_obs::finish();
    let names: Vec<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["a", "b", "c", "d"]);
    assert_eq!(t.spans[0].parent, None);
    assert_eq!(t.spans[1].parent, Some(0));
    assert_eq!(t.spans[2].parent, Some(1));
    assert_eq!(t.spans[3].parent, Some(0));
    // A child cannot outlast its parent's measured window.
    for s in &t.spans[1..] {
        let parent = &t.spans[s.parent.unwrap() as usize];
        assert!(s.start_ns >= parent.start_ns);
        assert!(s.start_ns + s.dur_ns <= parent.start_ns + parent.dur_ns);
    }
}

#[test]
fn unbalanced_guard_drop_closes_descendants() {
    pup_obs::start();
    let a = pup_obs::span("a");
    let b = pup_obs::span("b");
    let _c = pup_obs::span("c");
    // Parent dropped first: b and c must be closed at the same instant,
    // and c's later drop must be a harmless no-op.
    drop(a);
    drop(b);
    let t = pup_obs::finish();
    assert_eq!(t.spans.len(), 3);
    let end = |i: usize| t.spans[i].start_ns + t.spans[i].dur_ns;
    assert_eq!(end(1), end(0), "b closed when a closed");
    assert_eq!(end(2), end(0), "c closed when a closed");
}

#[test]
fn spans_still_open_at_finish_are_closed() {
    pup_obs::start();
    let guard = pup_obs::span("leaked");
    let t = pup_obs::finish();
    assert_eq!(t.spans.len(), 1);
    // Dropping the guard after finish() must not panic or corrupt anything.
    drop(guard);
    assert!(!pup_obs::enabled());
}

#[test]
fn guards_from_a_previous_collection_are_ignored() {
    pup_obs::start();
    let stale = pup_obs::span("old");
    pup_obs::abort();
    pup_obs::start();
    let _fresh = pup_obs::span("new");
    drop(stale); // generation mismatch: must not close "new"
    let _inner = pup_obs::span("inner");
    let t = pup_obs::finish();
    let names: Vec<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["new", "inner"]);
    assert_eq!(t.spans[1].parent, Some(0), "stale guard must not pop the live stack");
}

#[test]
fn disabled_recording_is_inert() {
    assert!(!pup_obs::enabled());
    let _s = pup_obs::span("ignored");
    let _t = pup_obs::time("fwd", "ignored");
    pup_obs::counter_add("ignored", 1);
    pup_obs::observe("ignored", 1.0);
    pup_obs::record("ignored", 1.0);
    pup_obs::start();
    let t = pup_obs::finish();
    assert_eq!(t.record_count(), 0);
}

#[test]
fn jsonl_round_trip_preserves_every_record() {
    let t = workload();
    let dir = std::env::temp_dir().join(format!("pup-obs-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");
    t.write_jsonl(&path).unwrap();
    let back = Telemetry::read_jsonl(&path).unwrap();
    assert_eq!(back, t, "write → parse must be lossless");
    // The report renderer (what `pup report-telemetry` prints) accepts it.
    let text = report::render(&back);
    assert!(text.contains("train.epoch_loss"), "{text}");
    assert!(text.contains("fwd.spmm"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_slo_and_exemplar_records_round_trip_through_jsonl() {
    use pup_obs::slo::{SloEvent, SloLevel, SloMonitor};
    use pup_obs::trace::{TraceId, TraceSink};
    use pup_obs::ExemplarRecord;

    // Produce real cross-thread trace spans through the sink API.
    let sink = TraceSink::new();
    let root = sink.root(TraceId(9)).span("request");
    let worker_ctx = root.ctx();
    std::thread::spawn(move || {
        let _score = worker_ctx.span("score");
    })
    .join()
    .unwrap();
    drop(root);

    pup_obs::start();
    for span in sink.drain_spans() {
        pup_obs::record_trace_span(span);
    }
    pup_obs::record_slo_event(SloEvent {
        seq: 17,
        monitor: SloMonitor::Latency,
        level: SloLevel::Warn,
        fast_burn: 2.5,
        slow_burn: 2.25,
    });
    pup_obs::record_exemplar(ExemplarRecord {
        hist: "metric.serve.request.latency_ns".to_string(),
        le: Some(50_000.0),
        value: 43_750.0,
        trace: 9,
    });
    pup_obs::record_exemplar(ExemplarRecord {
        hist: "metric.serve.request.latency_ns".to_string(),
        le: None, // overflow bucket
        value: 9.0e30,
        trace: 9,
    });
    let t = pup_obs::finish();
    assert_eq!(t.traces.len(), 2);
    assert_eq!(t.trace_ids(), vec![9]);

    let text = t.to_jsonl_string();
    let back = Telemetry::from_jsonl_str(&text).unwrap();
    assert_eq!(back, t, "tspan/slo/exemplar records must round-trip losslessly");

    // The stitched tree survives: "score" is parented under "request"
    // even though it was closed on another thread.
    let req = back.traces.iter().find(|s| s.name == "request").unwrap();
    let score = back.traces.iter().find(|s| s.name == "score").unwrap();
    assert_eq!(score.parent, Some(req.id));
    assert_eq!(pup_obs::trace::tree_shape(&back.traces, 9), "request\n  score\n");

    // And a v1 reader that predates these tags would simply skip them:
    // the schema version in the meta line is unchanged.
    assert!(text.starts_with("{\"t\":\"meta\",\"version\":1}"));
    let render = report::render(&back);
    assert!(render.contains("slo events"), "{render}");
    assert!(render.contains("tail exemplars"), "{render}");
}

#[test]
fn parser_rejects_corrupt_input() {
    assert!(Telemetry::from_jsonl_str("").is_err(), "empty file");
    assert!(Telemetry::from_jsonl_str("{\"t\":\"span\"}").is_err(), "missing meta");
    assert!(
        Telemetry::from_jsonl_str("{\"t\":\"meta\",\"version\":99}").is_err(),
        "future version"
    );
    let truncated = "{\"t\":\"meta\",\"version\":1}\n{\"t\":\"coun";
    assert!(Telemetry::from_jsonl_str(truncated).is_err(), "torn line");
}

#[test]
fn event_ordering_is_deterministic_across_identical_runs() {
    let a = workload();
    let b = workload();
    // Timings differ between runs; everything else — span names/order/
    // parentage, counter values, series, gauge values, histogram counts —
    // must be identical.
    let shape = |t: &Telemetry| {
        let spans: Vec<(String, Option<u32>)> =
            t.spans.iter().map(|s| (s.name.clone(), s.parent)).collect();
        let counters: Vec<(String, u64)> =
            t.counters.iter().map(|c| (c.name.clone(), c.value)).collect();
        let hists: Vec<(String, u64)> =
            t.hists.iter().map(|h| (h.name.clone(), h.summary.count)).collect();
        let series: Vec<(String, u64, f64)> =
            t.series.iter().map(|s| (s.name.clone(), s.idx, s.value)).collect();
        (spans, counters, hists, series)
    };
    assert_eq!(shape(&a), shape(&b));
    assert_eq!(a.counter("sampler.draws"), Some(96));
    assert_eq!(a.counter("sampler.rejections"), Some(6));
    assert_eq!(a.series_values("train.epoch_loss"), vec![0.7, 0.7 - 0.1, 0.7 - 0.2]);
    let g = a.gauge("train.grad_norm").unwrap();
    assert_eq!(g.n, 3);
    assert_eq!(g.last, 2.5);
}

#[test]
fn nested_start_panics_like_tape_recording() {
    pup_obs::start();
    let result = std::panic::catch_unwind(pup_obs::start);
    pup_obs::abort();
    assert!(result.is_err());
}
