//! Adjacency normalization (paper §IV-A and the GC-MC/NGCF baselines).
//!
//! PUP uses the *rectified adjacency* `Â = f(A + I)` where `f` takes the
//! average of each row (eq. 5) — i.e. row normalization after adding
//! self-loops. The self-loops matter: the paper cites Wu et al. [26] on the
//! spectrum-shrinking effect, and `row_normalized` makes them optional so the
//! ablation is one flag away. The GCN baselines use symmetric normalization
//! `D^{-1/2} A D^{-1/2}` instead.

use pup_tensor::CsrMatrix;

/// Row-normalizes `adj`, optionally adding self-loops first (eq. 5).
///
/// Rows whose degree is zero (possible only with `self_loops = false`) are
/// left as all-zero rows.
pub fn row_normalized(adj: &CsrMatrix, self_loops: bool) -> CsrMatrix {
    let n = adj.rows();
    assert_eq!(n, adj.cols(), "adjacency must be square");
    let with_loops = if self_loops { add_self_loops(adj) } else { adj.clone() };
    let degrees = with_loops.row_sums();
    let factors: Vec<f64> = (0..n)
        .map(|r| {
            let d = degrees.get(r, 0);
            if d > 0.0 {
                1.0 / d
            } else {
                0.0
            }
        })
        .collect();
    with_loops.scale_rows(&factors)
}

/// Symmetric normalization `D^{-1/2} (A [+ I]) D^{-1/2}` used by the GC-MC
/// and NGCF baselines.
pub fn sym_normalized(adj: &CsrMatrix, self_loops: bool) -> CsrMatrix {
    let n = adj.rows();
    assert_eq!(n, adj.cols(), "adjacency must be square");
    let with_loops = if self_loops { add_self_loops(adj) } else { adj.clone() };
    let degrees = with_loops.row_sums();
    let factors: Vec<f64> = (0..n)
        .map(|r| {
            let d = degrees.get(r, 0);
            if d > 0.0 {
                1.0 / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    with_loops.scale_rows(&factors).scale_cols(&factors)
}

/// Adds `I` to a square sparse matrix (eq. 5's `A + MI`).
pub fn add_self_loops(adj: &CsrMatrix) -> CsrMatrix {
    let n = adj.rows();
    assert_eq!(n, adj.cols(), "adjacency must be square");
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(adj.nnz() + n);
    for r in 0..n {
        for (c, v) in adj.row_entries(r) {
            triplets.push((r, c, v));
        }
        triplets.push((r, r, 1.0));
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> CsrMatrix {
        // 0 - 1 - 2 path.
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
    }

    #[test]
    fn self_loops_put_ones_on_diagonal() {
        let a = add_self_loops(&path_graph());
        for i in 0..3 {
            assert_eq!(a.get(i, i), 1.0);
        }
        assert_eq!(a.nnz(), 7);
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let a = row_normalized(&path_graph(), true);
        for r in 0..3 {
            let s: f64 = a.row_entries(r).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r} sums to {s}");
        }
        // Node 1 has degree 3 (two neighbors + self-loop): each weight 1/3.
        assert!((a.get(1, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.get(1, 1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_normalized_without_loops_keeps_zero_rows() {
        let isolated = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let a = row_normalized(&isolated, false);
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(0, 1), 1.0);

        let lonely = CsrMatrix::from_triplets(2, 2, &[]);
        let z = row_normalized(&lonely, false);
        assert_eq!(z.nnz(), 0);
    }

    #[test]
    fn sym_normalized_is_symmetric() {
        let a = sym_normalized(&path_graph(), true);
        for r in 0..3 {
            for (c, v) in a.row_entries(r) {
                assert!((a.get(c, r) - v).abs() < 1e-12, "asymmetry at ({r},{c})");
            }
        }
    }

    #[test]
    fn sym_normalized_matches_manual_degrees() {
        // Without self-loops: entry (0,1) = 1/sqrt(d0 * d1) = 1/sqrt(1*2).
        let a = sym_normalized(&path_graph(), false);
        assert!((a.get(0, 1) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
        assert!((a.get(1, 2) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn normalization_preserves_sparsity_pattern_plus_diagonal() {
        let base = path_graph();
        let a = row_normalized(&base, true);
        assert_eq!(a.nnz(), base.nnz() + 3);
        let b = row_normalized(&base, false);
        assert_eq!(b.nnz(), base.nnz());
    }
}
