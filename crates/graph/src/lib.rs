//! # pup-graph
//!
//! Construction and normalization of the unified heterogeneous graph from
//! *Price-aware Recommendation with Graph Convolutional Networks* (ICDE
//! 2020, §III-A / §IV-A).
//!
//! - [`layout`]: typed node references and flat index layout for the four
//!   node families (users, items, price levels, categories) plus optional
//!   extra attribute families.
//! - [`hetero`]: [`GraphBuilder`] / [`build_pup_graph`] assembling the
//!   symmetric binary adjacency; [`GraphSpec`] selects the ablation variant.
//! - [`normalize`]: the paper's rectified adjacency `Â = f(A + I)`
//!   (row-normalization with self-loops, eq. 5) and the symmetric
//!   normalization used by the GCN baselines.
//!
//! ```
//! use pup_graph::{build_pup_graph, GraphSpec, normalize::row_normalized};
//!
//! let g = build_pup_graph(
//!     2, 2, 2, 1,
//!     &[0, 1],          // price level per item
//!     &[0, 0],          // category per item
//!     &[(0, 0), (1, 1)],
//!     GraphSpec::FULL,
//! );
//! let a_hat = row_normalized(g.adjacency(), true);
//! assert_eq!(a_hat.rows(), g.layout().total());
//! ```

pub mod hetero;
pub mod layout;
pub mod normalize;

pub use hetero::{build_pup_graph, GraphBuilder, GraphSpec, HeteroGraph};
pub use layout::{Layout, NodeRef};
