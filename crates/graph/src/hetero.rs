//! Construction of the unified heterogeneous graph (paper §III-A).
//!
//! The graph `G = (V, E)` has user, item, price and category nodes; edges are
//! the observed interactions `(u, i)`, the attribute links `(i, p_i)` and
//! `(i, c_i)`, all undirected (stored symmetrically). [`GraphSpec`] selects
//! which attribute families participate — the PUP ablations (Table III,
//! Fig 6's PUP-) remove price and/or category nodes.

use pup_tensor::CsrMatrix;

use crate::layout::{Layout, NodeRef};

/// Which attribute node families to include when building a PUP graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphSpec {
    /// Include price-level nodes and `(item, price)` edges.
    pub include_price: bool,
    /// Include category nodes and `(item, category)` edges.
    pub include_category: bool,
}

impl GraphSpec {
    /// The full PUP graph: users, items, prices and categories.
    pub const FULL: Self = Self { include_price: true, include_category: true };
    /// Price nodes only (the paper's `PUP w/ p`, a.k.a. `PUP-`).
    pub const PRICE_ONLY: Self = Self { include_price: true, include_category: false };
    /// Category nodes only (the paper's `PUP w/ c`).
    pub const CATEGORY_ONLY: Self = Self { include_price: false, include_category: true };
    /// Bipartite user–item graph (the paper's `PUP w/o c,p`; also GC-MC/NGCF).
    pub const BIPARTITE: Self = Self { include_price: false, include_category: false };
}

/// An immutable heterogeneous graph: a [`Layout`] plus a symmetric adjacency.
#[derive(Clone, Debug)]
pub struct HeteroGraph {
    layout: Layout,
    /// Symmetric 0/1 adjacency over `layout.total()` nodes (no self-loops;
    /// normalization adds them, see [`crate::normalize`]).
    adjacency: CsrMatrix,
    /// Edge count before symmetrization.
    n_edges: usize,
}

impl HeteroGraph {
    /// The node layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The symmetric adjacency matrix (without self-loops).
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Degree of a node (without self-loop).
    pub fn degree(&self, node: NodeRef) -> usize {
        let idx = self.layout.index(node);
        self.adjacency.row_entries(idx).count()
    }
}

/// Incremental builder for [`HeteroGraph`].
///
/// ```
/// use pup_graph::{GraphBuilder, GraphSpec, NodeRef};
///
/// // 2 users, 3 items, 2 price levels, 1 category.
/// let mut b = GraphBuilder::new(2, 3, 2, 1, GraphSpec::FULL);
/// b.add_interaction(0, 1);
/// b.add_item_attributes(1, 0, 0);
/// let g = b.build();
/// assert_eq!(g.degree(NodeRef::Item(1)), 3); // user 0, price 0, category 0
/// ```
pub struct GraphBuilder {
    layout: Layout,
    spec: GraphSpec,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Starts a builder. When the spec excludes a family its count in the
    /// layout is forced to zero so no dead embedding rows are allocated.
    pub fn new(
        n_users: usize,
        n_items: usize,
        n_prices: usize,
        n_categories: usize,
        spec: GraphSpec,
    ) -> Self {
        let n_prices = if spec.include_price { n_prices } else { 0 };
        let n_categories = if spec.include_category { n_categories } else { 0 };
        Self {
            layout: Layout::new(n_users, n_items, n_prices, n_categories),
            spec,
            edges: Vec::new(),
        }
    }

    /// Adds an observed interaction edge `(u, i)` (R_ui = 1).
    pub fn add_interaction(&mut self, user: usize, item: usize) {
        let u = self.layout.index(NodeRef::User(user));
        let i = self.layout.index(NodeRef::Item(item));
        self.edges.push((u, i));
    }

    /// Adds the attribute edges of an item: `(i, p_i)` and `(i, c_i)`.
    /// Families excluded by the spec are ignored.
    pub fn add_item_attributes(&mut self, item: usize, price_level: usize, category: usize) {
        let i = self.layout.index(NodeRef::Item(item));
        if self.spec.include_price {
            let p = self.layout.index(NodeRef::Price(price_level));
            self.edges.push((i, p));
        }
        if self.spec.include_category {
            let c = self.layout.index(NodeRef::Category(category));
            self.edges.push((i, c));
        }
    }

    /// Registers an extra attribute family (paper §VII) and returns its id.
    pub fn add_extra_family(&mut self, name: impl Into<String>, count: usize) -> usize {
        self.layout.add_extra_family(name, count)
    }

    /// Links any node to an extra-family attribute node.
    pub fn add_extra_edge(&mut self, node: NodeRef, family: usize, attribute: usize) {
        let a = self.layout.index(NodeRef::Extra { family, index: attribute });
        let n = self.layout.index(node);
        self.edges.push((n, a));
    }

    /// Finalizes the symmetric adjacency.
    pub fn build(self) -> HeteroGraph {
        let n = self.layout.total();
        let mut triplets = Vec::with_capacity(self.edges.len() * 2);
        for &(a, b) in &self.edges {
            triplets.push((a, b, 1.0));
            triplets.push((b, a, 1.0));
        }
        let mut adjacency = CsrMatrix::from_triplets(n, n, &triplets);
        // Duplicate edges (repeat purchases) must stay 0/1: the paper's R is a
        // binary interaction matrix.
        adjacency = binarize(&adjacency);
        HeteroGraph { layout: self.layout, adjacency, n_edges: self.edges.len() }
    }
}

fn binarize(m: &CsrMatrix) -> CsrMatrix {
    let mut triplets = Vec::with_capacity(m.nnz());
    for r in 0..m.rows() {
        for (c, v) in m.row_entries(r) {
            // pup-lint: allow(float-eq) — structural nonzeros are exact by construction
            if v != 0.0 {
                triplets.push((r, c, 1.0));
            }
        }
    }
    CsrMatrix::from_triplets(m.rows(), m.cols(), &triplets)
}

/// Convenience constructor for the standard PUP graph from dataset arrays.
///
/// `price_levels[i]` and `categories[i]` are the attributes of item `i`;
/// `interactions` are the observed `(user, item)` pairs of the training set.
#[allow(clippy::too_many_arguments)]
pub fn build_pup_graph(
    n_users: usize,
    n_items: usize,
    n_price_levels: usize,
    n_categories: usize,
    price_levels: &[usize],
    categories: &[usize],
    interactions: &[(usize, usize)],
    spec: GraphSpec,
) -> HeteroGraph {
    assert_eq!(price_levels.len(), n_items, "one price level per item required");
    assert_eq!(categories.len(), n_items, "one category per item required");
    let mut b = GraphBuilder::new(n_users, n_items, n_price_levels, n_categories, spec);
    for item in 0..n_items {
        b.add_item_attributes(item, price_levels[item], categories[item]);
    }
    for &(u, i) in interactions {
        b.add_interaction(u, i);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph(spec: GraphSpec) -> HeteroGraph {
        // 2 users, 3 items, 2 prices, 2 categories.
        build_pup_graph(2, 3, 2, 2, &[0, 1, 1], &[0, 0, 1], &[(0, 0), (0, 1), (1, 2), (1, 1)], spec)
    }

    #[test]
    fn full_graph_degrees_match_paper_updating_rule() {
        let g = toy_graph(GraphSpec::FULL);
        // User 0 interacted with items 0 and 1.
        assert_eq!(g.degree(NodeRef::User(0)), 2);
        // Item 1: users 0 and 1, plus price 1 and category 0.
        assert_eq!(g.degree(NodeRef::Item(1)), 4);
        // Price 1 links to items 1 and 2.
        assert_eq!(g.degree(NodeRef::Price(1)), 2);
        // Category 0 links to items 0 and 1.
        assert_eq!(g.degree(NodeRef::Category(0)), 2);
    }

    #[test]
    fn adjacency_is_symmetric_and_binary() {
        let g = toy_graph(GraphSpec::FULL);
        let a = g.adjacency();
        for r in 0..a.rows() {
            for (c, v) in a.row_entries(r) {
                assert_eq!(v, 1.0, "entries must be binary");
                assert_eq!(a.get(c, r), v, "adjacency must be symmetric");
            }
        }
    }

    #[test]
    fn duplicate_interactions_stay_binary() {
        let mut b = GraphBuilder::new(1, 1, 1, 1, GraphSpec::FULL);
        b.add_interaction(0, 0);
        b.add_interaction(0, 0);
        let g = b.build();
        assert_eq!(g.adjacency().get(0, 1), 1.0);
        assert_eq!(g.degree(NodeRef::User(0)), 1);
    }

    #[test]
    fn bipartite_spec_drops_attribute_nodes() {
        let g = toy_graph(GraphSpec::BIPARTITE);
        assert_eq!(g.layout().total(), 5); // 2 users + 3 items
        assert_eq!(g.layout().n_prices(), 0);
        assert_eq!(g.layout().n_categories(), 0);
        assert_eq!(g.degree(NodeRef::Item(1)), 2); // only the two users
    }

    #[test]
    fn price_only_spec_matches_pup_minus() {
        let g = toy_graph(GraphSpec::PRICE_ONLY);
        assert_eq!(g.layout().n_prices(), 2);
        assert_eq!(g.layout().n_categories(), 0);
        assert_eq!(g.degree(NodeRef::Item(0)), 2); // user 0 + price 0
    }

    #[test]
    fn extra_family_nodes_connect() {
        let mut b = GraphBuilder::new(2, 2, 1, 1, GraphSpec::FULL);
        let brand = b.add_extra_family("brand", 3);
        b.add_extra_edge(NodeRef::Item(0), brand, 2);
        b.add_extra_edge(NodeRef::User(1), brand, 2); // user profile attribute
        let g = b.build();
        assert_eq!(g.degree(NodeRef::Extra { family: brand, index: 2 }), 2);
        assert_eq!(g.layout().total(), 2 + 2 + 1 + 1 + 3);
    }

    #[test]
    fn edge_count_reported() {
        let g = toy_graph(GraphSpec::FULL);
        // 3 items x 2 attribute edges + 4 interactions.
        assert_eq!(g.n_edges(), 10);
    }
}
