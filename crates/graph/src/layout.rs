//! Node-index layout for the unified heterogeneous graph.
//!
//! The paper's graph (§III-A) has four node families — users, items, price
//! levels and categories — that all live in one adjacency matrix. [`Layout`]
//! owns the mapping between typed node references and flat row indices, so
//! the rest of the code never does offset arithmetic by hand.
//!
//! The paper's §VII notes that *"other features can be easily integrated ...
//! as separate nodes"*; [`Layout`] supports that via extra named families
//! appended after the core four.

/// A typed reference to a node in the heterogeneous graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// A user node (index within users).
    User(usize),
    /// An item node (index within items).
    Item(usize),
    /// A price-level node (index within price levels).
    Price(usize),
    /// A category node (index within categories).
    Category(usize),
    /// A node of the `family`-th extra attribute family.
    Extra {
        /// Which extra attribute family the node belongs to.
        family: usize,
        /// Index within that family.
        index: usize,
    },
}

/// Flat index layout: `[users | items | prices | categories | extras...]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    n_users: usize,
    n_items: usize,
    n_prices: usize,
    n_categories: usize,
    /// `(name, count)` per extra attribute family (paper §VII generality).
    extras: Vec<(String, usize)>,
}

impl Layout {
    /// Creates the four-family layout of the paper.
    pub fn new(n_users: usize, n_items: usize, n_prices: usize, n_categories: usize) -> Self {
        Self { n_users, n_items, n_prices, n_categories, extras: Vec::new() }
    }

    /// Appends an extra attribute family, returning its family id.
    pub fn add_extra_family(&mut self, name: impl Into<String>, count: usize) -> usize {
        self.extras.push((name.into(), count));
        self.extras.len() - 1
    }

    /// Number of user nodes.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of item nodes.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of price-level nodes.
    pub fn n_prices(&self) -> usize {
        self.n_prices
    }

    /// Number of category nodes.
    pub fn n_categories(&self) -> usize {
        self.n_categories
    }

    /// Name and size of extra family `family`.
    pub fn extra_family(&self, family: usize) -> (&str, usize) {
        let (name, count) = &self.extras[family];
        (name, *count)
    }

    /// Number of extra families.
    pub fn n_extra_families(&self) -> usize {
        self.extras.len()
    }

    /// Total number of nodes across all families.
    pub fn total(&self) -> usize {
        self.n_users
            + self.n_items
            + self.n_prices
            + self.n_categories
            + self.extras.iter().map(|(_, c)| c).sum::<usize>()
    }

    /// Flat index of a typed node reference.
    ///
    /// # Panics
    /// Panics when the reference is out of range for this layout.
    pub fn index(&self, node: NodeRef) -> usize {
        match node {
            NodeRef::User(u) => {
                // pup-audit: allow(hotpath-panic): fail-fast bounds precondition; dataset load registers every node id
                assert!(u < self.n_users, "user {u} out of {} users", self.n_users);
                u
            }
            NodeRef::Item(i) => {
                // pup-audit: allow(hotpath-panic): fail-fast bounds precondition; dataset load registers every node id
                assert!(i < self.n_items, "item {i} out of {} items", self.n_items);
                self.n_users + i
            }
            NodeRef::Price(p) => {
                // pup-audit: allow(hotpath-panic): fail-fast bounds precondition; dataset load registers every node id
                assert!(p < self.n_prices, "price {p} out of {} price levels", self.n_prices);
                self.n_users + self.n_items + p
            }
            NodeRef::Category(c) => {
                // pup-audit: allow(hotpath-panic): fail-fast bounds precondition; dataset load registers every node id
                assert!(c < self.n_categories, "category {c} out of {}", self.n_categories);
                self.n_users + self.n_items + self.n_prices + c
            }
            NodeRef::Extra { family, index } => {
                // pup-audit: allow(hotpath-panic): fail-fast bounds precondition; extra families are registered at build
                assert!(family < self.extras.len(), "extra family {family} not registered");
                // pup-audit: allow(hotpath-panic): family bounds asserted above
                let offset: usize = self.extras[..family].iter().map(|(_, c)| c).sum();
                // pup-audit: allow(hotpath-panic): family bounds asserted above
                let count = self.extras[family].1;
                // pup-audit: allow(hotpath-panic): fail-fast bounds precondition; extra ids are registered at build
                assert!(index < count, "extra node {index} out of {count}");
                self.n_users + self.n_items + self.n_prices + self.n_categories + offset + index
            }
        }
    }

    /// Inverse of [`Layout::index`].
    pub fn node_at(&self, mut idx: usize) -> NodeRef {
        assert!(idx < self.total(), "index {idx} out of {} nodes", self.total());
        if idx < self.n_users {
            return NodeRef::User(idx);
        }
        idx -= self.n_users;
        if idx < self.n_items {
            return NodeRef::Item(idx);
        }
        idx -= self.n_items;
        if idx < self.n_prices {
            return NodeRef::Price(idx);
        }
        idx -= self.n_prices;
        if idx < self.n_categories {
            return NodeRef::Category(idx);
        }
        idx -= self.n_categories;
        for (family, (_, count)) in self.extras.iter().enumerate() {
            if idx < *count {
                return NodeRef::Extra { family, index: idx };
            }
            idx -= count;
        }
        unreachable!("index arithmetic covered all families")
    }

    /// Flat index range `[start, end)` of the user block.
    pub fn user_range(&self) -> std::ops::Range<usize> {
        0..self.n_users
    }

    /// Flat index range of the item block.
    pub fn item_range(&self) -> std::ops::Range<usize> {
        self.n_users..self.n_users + self.n_items
    }

    /// Flat index range of the price block.
    pub fn price_range(&self) -> std::ops::Range<usize> {
        let s = self.n_users + self.n_items;
        s..s + self.n_prices
    }

    /// Flat index range of the category block.
    pub fn category_range(&self) -> std::ops::Range<usize> {
        let s = self.n_users + self.n_items + self.n_prices;
        s..s + self.n_categories
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_contiguous_blocks() {
        let l = Layout::new(3, 4, 2, 5);
        assert_eq!(l.index(NodeRef::User(0)), 0);
        assert_eq!(l.index(NodeRef::User(2)), 2);
        assert_eq!(l.index(NodeRef::Item(0)), 3);
        assert_eq!(l.index(NodeRef::Price(0)), 7);
        assert_eq!(l.index(NodeRef::Category(0)), 9);
        assert_eq!(l.index(NodeRef::Category(4)), 13);
        assert_eq!(l.total(), 14);
    }

    #[test]
    fn node_at_is_inverse_of_index() {
        let mut l = Layout::new(2, 3, 4, 5);
        l.add_extra_family("brand", 6);
        l.add_extra_family("seller", 7);
        for idx in 0..l.total() {
            assert_eq!(l.index(l.node_at(idx)), idx, "roundtrip failed at {idx}");
        }
    }

    #[test]
    fn ranges_cover_everything_in_order() {
        let l = Layout::new(2, 3, 4, 5);
        let collected: Vec<usize> = l
            .user_range()
            .chain(l.item_range())
            .chain(l.price_range())
            .chain(l.category_range())
            .collect();
        assert_eq!(collected, (0..14).collect::<Vec<_>>());
    }

    #[test]
    fn extra_families_extend_total() {
        let mut l = Layout::new(1, 1, 1, 1);
        let brand = l.add_extra_family("brand", 10);
        assert_eq!(l.total(), 14);
        assert_eq!(l.extra_family(brand), ("brand", 10));
        assert_eq!(l.index(NodeRef::Extra { family: brand, index: 0 }), 4);
        assert_eq!(l.index(NodeRef::Extra { family: brand, index: 9 }), 13);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_panics() {
        let l = Layout::new(1, 1, 1, 1);
        l.index(NodeRef::User(1));
    }

    #[test]
    fn zero_sized_families_are_allowed() {
        // The PUP ablations remove price and/or category nodes entirely.
        let l = Layout::new(2, 3, 0, 0);
        assert_eq!(l.total(), 5);
        assert_eq!(l.price_range().len(), 0);
        assert_eq!(l.category_range().len(), 0);
        assert_eq!(l.node_at(4), NodeRef::Item(2));
    }
}
