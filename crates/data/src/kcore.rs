//! Iterative k-core filtering (paper §V-A1: "10-core settings which means
//! only retaining users and items with at least 10 interactions").
//!
//! Filtering is iterative: removing a sparse user can push an item below the
//! threshold and vice versa, so we repeat until a fixed point. Surviving
//! users and items are re-indexed densely.

use std::collections::HashSet;

use crate::types::{Dataset, Interaction};

/// Result of a k-core filter: the filtered dataset plus the index mappings
/// back into the original dataset.
#[derive(Clone, Debug)]
pub struct KcoreResult {
    /// The filtered, re-indexed dataset.
    pub dataset: Dataset,
    /// `old user index` per new user index.
    pub user_map: Vec<usize>,
    /// `old item index` per new item index.
    pub item_map: Vec<usize>,
}

/// Applies iterative k-core filtering on *unique* user–item pairs.
///
/// Degree counts deduplicate repeat purchases (matching the binary `R`), but
/// the full interaction log of surviving pairs — including repeats — is kept
/// so temporal splitting still sees every event.
pub fn kcore_filter(dataset: &Dataset, k: usize) -> KcoreResult {
    dataset.validate();
    let pairs: HashSet<(u32, u32)> =
        dataset.interactions.iter().map(|it| (it.user, it.item)).collect();

    let mut user_alive = vec![true; dataset.n_users];
    let mut item_alive = vec![true; dataset.n_items];
    loop {
        let mut user_deg = vec![0usize; dataset.n_users];
        let mut item_deg = vec![0usize; dataset.n_items];
        for &(u, i) in &pairs {
            if user_alive[u as usize] && item_alive[i as usize] {
                user_deg[u as usize] += 1;
                item_deg[i as usize] += 1;
            }
        }
        let mut changed = false;
        for u in 0..dataset.n_users {
            if user_alive[u] && user_deg[u] < k {
                user_alive[u] = false;
                changed = true;
            }
        }
        for i in 0..dataset.n_items {
            if item_alive[i] && item_deg[i] < k {
                item_alive[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Dense re-indexing of survivors.
    let user_map: Vec<usize> = (0..dataset.n_users).filter(|&u| user_alive[u]).collect();
    let item_map: Vec<usize> = (0..dataset.n_items).filter(|&i| item_alive[i]).collect();
    let mut user_new = vec![usize::MAX; dataset.n_users];
    for (new, &old) in user_map.iter().enumerate() {
        user_new[old] = new;
    }
    let mut item_new = vec![usize::MAX; dataset.n_items];
    for (new, &old) in item_map.iter().enumerate() {
        item_new[old] = new;
    }

    let interactions: Vec<Interaction> = dataset
        .interactions
        .iter()
        .filter(|it| user_alive[it.user as usize] && item_alive[it.item as usize])
        .map(|it| Interaction {
            // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
            user: user_new[it.user as usize] as u32,
            // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
            item: item_new[it.item as usize] as u32,
            timestamp: it.timestamp,
        })
        .collect();

    let dataset_out = Dataset {
        n_users: user_map.len(),
        n_items: item_map.len(),
        n_categories: dataset.n_categories,
        n_price_levels: dataset.n_price_levels,
        item_price: item_map.iter().map(|&i| dataset.item_price[i]).collect(),
        item_category: item_map.iter().map(|&i| dataset.item_category[i]).collect(),
        item_price_level: item_map.iter().map(|&i| dataset.item_price_level[i]).collect(),
        interactions,
    };
    dataset_out.validate();
    KcoreResult { dataset: dataset_out, user_map, item_map }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from_pairs(n_users: usize, n_items: usize, pairs: &[(u32, u32)]) -> Dataset {
        Dataset {
            n_users,
            n_items,
            n_categories: 1,
            n_price_levels: 1,
            item_price: vec![1.0; n_items],
            item_category: vec![0; n_items],
            item_price_level: vec![0; n_items],
            interactions: pairs
                .iter()
                .enumerate()
                .map(|(t, &(u, i))| Interaction { user: u, item: i, timestamp: t as u64 })
                .collect(),
        }
    }

    #[test]
    fn one_core_keeps_all_connected() {
        let d = dataset_from_pairs(2, 2, &[(0, 0), (1, 1)]);
        let r = kcore_filter(&d, 1);
        assert_eq!(r.dataset.n_users, 2);
        assert_eq!(r.dataset.n_items, 2);
    }

    #[test]
    fn isolated_nodes_are_dropped_even_at_k1() {
        let d = dataset_from_pairs(3, 3, &[(0, 0), (1, 1)]);
        let r = kcore_filter(&d, 1);
        assert_eq!(r.dataset.n_users, 2);
        assert_eq!(r.dataset.n_items, 2);
        assert_eq!(r.user_map, vec![0, 1]);
    }

    #[test]
    fn cascade_removal_reaches_fixed_point() {
        // User 2 only buys item 2; item 2 is only bought by user 2 and user 0.
        // With k=2: user 2 dies (degree 1) -> item 2 drops to degree 1 and
        // dies -> user 0 drops from 3 to 2 and survives.
        let d = dataset_from_pairs(3, 3, &[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 2)]);
        let r = kcore_filter(&d, 2);
        assert_eq!(r.user_map, vec![0, 1]);
        assert_eq!(r.item_map, vec![0, 1]);
        // Every surviving user/item must have >= 2 unique partners.
        let lists = r.dataset.user_item_lists();
        assert!(lists.iter().all(|l| l.len() >= 2));
        let ilists = r.dataset.item_user_lists();
        assert!(ilists.iter().all(|l| l.len() >= 2));
    }

    #[test]
    fn repeat_purchases_do_not_inflate_degree() {
        // User 0 buys item 0 five times: unique degree is still 1.
        let d = dataset_from_pairs(1, 1, &[(0, 0); 5]);
        let r = kcore_filter(&d, 2);
        assert_eq!(r.dataset.n_users, 0);
        assert_eq!(r.dataset.n_items, 0);
    }

    #[test]
    fn surviving_log_keeps_repeats_and_order() {
        let d = dataset_from_pairs(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1), (0, 0)]);
        let r = kcore_filter(&d, 2);
        assert_eq!(r.dataset.n_interactions(), 5);
        let ts: Vec<u64> = r.dataset.interactions.iter().map(|it| it.timestamp).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn kcore_invariant_holds_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pairs: Vec<(u32, u32)> =
            (0..400).map(|_| (rng.gen_range(0..40), rng.gen_range(0..40))).collect();
        let d = dataset_from_pairs(40, 40, &pairs);
        let r = kcore_filter(&d, 5);
        for l in r.dataset.user_item_lists() {
            assert!(l.len() >= 5, "user below 5-core survived");
        }
        for l in r.dataset.item_user_lists() {
            assert!(l.len() >= 5, "item below 5-core survived");
        }
    }
}
