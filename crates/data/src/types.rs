//! Core dataset types for price-aware recommendation.
//!
//! A [`Dataset`] is the paper's problem input (§II-B): the binary interaction
//! matrix `R` (as a timestamped interaction log), the item prices `p` and the
//! item categories `c`.

/// One observed purchase `(u, i)` at a (logical) timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Interaction {
    /// User index in `0..n_users`.
    pub user: u32,
    /// Item index in `0..n_items`.
    pub item: u32,
    /// Logical timestamp; the temporal split orders by this field.
    pub timestamp: u64,
}

/// A complete price-aware recommendation dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Number of users `M`.
    pub n_users: usize,
    /// Number of items `N`.
    pub n_items: usize,
    /// Number of item categories.
    pub n_categories: usize,
    /// Number of discretized price levels.
    pub n_price_levels: usize,
    /// Raw (continuous) price of each item.
    pub item_price: Vec<f64>,
    /// Category of each item.
    pub item_category: Vec<usize>,
    /// Discretized price level of each item (see [`crate::quantize`]).
    pub item_price_level: Vec<usize>,
    /// Interaction log, sorted by timestamp.
    pub interactions: Vec<Interaction>,
}

impl Dataset {
    /// Validates internal consistency; called by constructors and tests.
    ///
    /// # Panics
    /// Panics when any invariant is violated.
    pub fn validate(&self) {
        assert_eq!(self.item_price.len(), self.n_items, "one raw price per item");
        assert_eq!(self.item_category.len(), self.n_items, "one category per item");
        assert_eq!(self.item_price_level.len(), self.n_items, "one price level per item");
        for (i, &c) in self.item_category.iter().enumerate() {
            assert!(c < self.n_categories, "item {i} has category {c} >= {}", self.n_categories);
        }
        for (i, &p) in self.item_price_level.iter().enumerate() {
            assert!(
                p < self.n_price_levels,
                "item {i} has price level {p} >= {}",
                self.n_price_levels
            );
        }
        let mut last_ts = 0;
        for (k, it) in self.interactions.iter().enumerate() {
            assert!((it.user as usize) < self.n_users, "interaction {k}: bad user");
            assert!((it.item as usize) < self.n_items, "interaction {k}: bad item");
            assert!(it.timestamp >= last_ts, "interactions must be sorted by timestamp");
            last_ts = it.timestamp;
        }
    }

    /// Number of logged interactions (including repeat purchases).
    pub fn n_interactions(&self) -> usize {
        self.interactions.len()
    }

    /// Items interacted with by each user, deduplicated, as index lists.
    pub fn user_item_lists(&self) -> Vec<Vec<u32>> {
        let mut lists = vec![Vec::new(); self.n_users];
        for it in &self.interactions {
            lists[it.user as usize].push(it.item);
        }
        for l in &mut lists {
            l.sort_unstable();
            l.dedup();
        }
        lists
    }

    /// Users who interacted with each item, deduplicated.
    pub fn item_user_lists(&self) -> Vec<Vec<u32>> {
        let mut lists = vec![Vec::new(); self.n_items];
        for it in &self.interactions {
            lists[it.item as usize].push(it.user);
        }
        for l in &mut lists {
            l.sort_unstable();
            l.dedup();
        }
        lists
    }

    /// Items of each category.
    pub fn category_item_lists(&self) -> Vec<Vec<u32>> {
        let mut lists = vec![Vec::new(); self.n_categories];
        for (i, &c) in self.item_category.iter().enumerate() {
            // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
            lists[c].push(i as u32);
        }
        lists
    }

    /// Unique `(user, item)` pairs in log order (repeat purchases removed,
    /// first occurrence kept). This is the binary interaction matrix `R`.
    pub fn unique_pairs(&self) -> Vec<(usize, usize)> {
        let mut seen = std::collections::HashSet::with_capacity(self.interactions.len());
        let mut pairs = Vec::with_capacity(self.interactions.len());
        for it in &self.interactions {
            if seen.insert((it.user, it.item)) {
                pairs.push((it.user as usize, it.item as usize));
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn toy_dataset() -> Dataset {
        Dataset {
            n_users: 2,
            n_items: 3,
            n_categories: 2,
            n_price_levels: 2,
            item_price: vec![1.0, 5.0, 9.0],
            item_category: vec![0, 0, 1],
            item_price_level: vec![0, 1, 1],
            interactions: vec![
                Interaction { user: 0, item: 0, timestamp: 0 },
                Interaction { user: 0, item: 1, timestamp: 1 },
                Interaction { user: 1, item: 1, timestamp: 2 },
                Interaction { user: 0, item: 0, timestamp: 3 }, // repeat purchase
            ],
        }
    }

    #[test]
    fn validate_accepts_consistent_data() {
        toy_dataset().validate();
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn validate_rejects_unsorted_timestamps() {
        let mut d = toy_dataset();
        d.interactions.swap(0, 3);
        d.validate();
    }

    #[test]
    #[should_panic(expected = "price level")]
    fn validate_rejects_bad_price_level() {
        let mut d = toy_dataset();
        d.item_price_level[0] = 99;
        d.validate();
    }

    #[test]
    fn user_item_lists_dedupe() {
        let d = toy_dataset();
        let lists = d.user_item_lists();
        assert_eq!(lists[0], vec![0, 1]);
        assert_eq!(lists[1], vec![1]);
    }

    #[test]
    fn item_user_lists_are_inverse() {
        let d = toy_dataset();
        let lists = d.item_user_lists();
        assert_eq!(lists[0], vec![0]);
        assert_eq!(lists[1], vec![0, 1]);
        assert!(lists[2].is_empty());
    }

    #[test]
    fn unique_pairs_keep_first_occurrence() {
        let d = toy_dataset();
        assert_eq!(d.unique_pairs(), vec![(0, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn category_item_lists_partition_items() {
        let d = toy_dataset();
        let lists = d.category_item_lists();
        assert_eq!(lists[0], vec![0, 1]);
        assert_eq!(lists[1], vec![2]);
    }
}
