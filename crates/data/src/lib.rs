//! # pup-data
//!
//! Datasets for price-aware recommendation: core types, price quantization,
//! k-core filtering, temporal splitting, synthetic data generation and the
//! CWTP (category willingness-to-pay) analysis of the paper's §II.
//!
//! The paper evaluates on Yelp2018, Beibei and Amazon snapshots that are not
//! redistributable; [`synthetic`] provides generators whose ground-truth
//! utility model plants the same causal structure (interest ∧ category-
//! dependent affordability), so every experiment's *shape* is reproducible.
//! See `DESIGN.md` §2 for the substitution argument.
//!
//! ```
//! use pup_data::synthetic::{generate, GeneratorConfig};
//! use pup_data::split::{temporal_split, SplitRatios};
//!
//! let synth = generate(&GeneratorConfig { n_interactions: 2_000, kcore: 0, ..Default::default() });
//! let split = temporal_split(&synth.dataset, SplitRatios::PAPER);
//! assert!(split.train.len() > split.test.len());
//! ```

pub mod cwtp;
pub mod io;
pub mod kcore;
pub mod quantize;
pub mod split;
pub mod stats;
pub mod synthetic;
pub mod types;

pub use quantize::Quantization;
pub use split::{Split, SplitRatios};
pub use synthetic::{GeneratorConfig, SyntheticDataset};
pub use types::{Dataset, Interaction};
