//! Loading and saving datasets as plain CSV, so the library runs on real
//! interaction logs (e.g. an export of Yelp2018 or Amazon reviews), not only
//! on the synthetic generators.
//!
//! Two files describe a dataset:
//!
//! - **items CSV** — header `item_id,price,category`, one row per item.
//!   `item_id` and `category` are arbitrary strings; prices are positive
//!   floats.
//! - **interactions CSV** — header `user_id,item_id,timestamp`, one row per
//!   event; `timestamp` is any non-negative integer (events are sorted on
//!   load).
//!
//! [`load_dataset`] maps string ids to dense indices, quantizes prices with
//! the chosen scheme and returns the [`Dataset`] plus the id maps.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use crate::quantize::{quantize, Quantization};
use crate::types::{Dataset, Interaction};

/// Mapping between the source string ids and the dense dataset indices.
#[derive(Clone, Debug, Default)]
pub struct IdMaps {
    /// Original user id per dense user index.
    pub users: Vec<String>,
    /// Original item id per dense item index.
    pub items: Vec<String>,
    /// Original category name per dense category index.
    pub categories: Vec<String>,
}

/// Errors raised while parsing dataset CSVs.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A malformed row, with file label, 1-based line number and reason.
    Parse {
        /// Which file the error came from ("items" / "interactions").
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An interaction references an item absent from the items CSV.
    UnknownItem {
        /// 1-based line number in the interactions file.
        line: usize,
        /// The offending item id.
        item_id: String,
    },
    /// The same (user, item, timestamp) event appears twice — almost always
    /// a doubled export, which would silently skew implicit-feedback counts.
    DuplicateInteraction {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The offending user id.
        user_id: String,
        /// The offending item id.
        item_id: String,
    },
    /// The interactions CSV contains no events, so there is nothing to
    /// split or train on.
    EmptyDataset,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { file, line, reason } => {
                write!(f, "{file} csv, line {line}: {reason}")
            }
            LoadError::UnknownItem { line, item_id } => {
                write!(f, "interactions csv, line {line}: unknown item id {item_id:?}")
            }
            LoadError::DuplicateInteraction { line, user_id, item_id } => {
                write!(
                    f,
                    "interactions csv, line {line}: duplicate event for user \
                     {user_id:?}, item {item_id:?}"
                )
            }
            LoadError::EmptyDataset => write!(f, "interactions csv contains no events"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Loads a dataset from `items.csv` + `interactions.csv` content strings.
///
/// This is the pure-parsing core of [`load_dataset`], usable without a
/// filesystem (tests, embedding in services).
pub fn parse_dataset(
    items_csv: &str,
    interactions_csv: &str,
    n_price_levels: usize,
    scheme: Quantization,
) -> Result<(Dataset, IdMaps), LoadError> {
    // --- items -----------------------------------------------------------
    let mut item_index: HashMap<String, usize> = HashMap::new();
    let mut cat_index: HashMap<String, usize> = HashMap::new();
    let mut maps = IdMaps::default();
    let mut prices: Vec<f64> = Vec::new();
    let mut categories: Vec<usize> = Vec::new();
    for (lineno, line) in items_csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue; // header / blank
        }
        let mut fields = line.splitn(3, ',');
        let (id, price, cat) = match (fields.next(), fields.next(), fields.next()) {
            (Some(a), Some(b), Some(c)) => (a.trim(), b.trim(), c.trim()),
            _ => {
                return Err(LoadError::Parse {
                    file: "items",
                    line: lineno + 1,
                    reason: "expected item_id,price,category".into(),
                })
            }
        };
        if item_index.contains_key(id) {
            return Err(LoadError::Parse {
                file: "items",
                line: lineno + 1,
                reason: format!("duplicate item id {id:?}"),
            });
        }
        let price: f64 = price.parse().map_err(|_| LoadError::Parse {
            file: "items",
            line: lineno + 1,
            reason: format!("bad price {price:?}"),
        })?;
        if !(price.is_finite() && price > 0.0) {
            return Err(LoadError::Parse {
                file: "items",
                line: lineno + 1,
                reason: format!("price must be positive, got {price}"),
            });
        }
        let cat_id = *cat_index.entry(cat.to_string()).or_insert_with(|| {
            maps.categories.push(cat.to_string());
            maps.categories.len() - 1
        });
        item_index.insert(id.to_string(), maps.items.len());
        maps.items.push(id.to_string());
        prices.push(price);
        categories.push(cat_id);
    }
    if maps.items.is_empty() {
        return Err(LoadError::Parse { file: "items", line: 1, reason: "no items found".into() });
    }

    // --- interactions ------------------------------------------------------
    let mut user_index: HashMap<String, usize> = HashMap::new();
    let mut interactions: Vec<Interaction> = Vec::new();
    let mut seen_events: HashSet<(u32, u32, u64)> = HashSet::new();
    for (lineno, line) in interactions_csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let mut fields = line.splitn(3, ',');
        let (user, item, ts) = match (fields.next(), fields.next(), fields.next()) {
            (Some(a), Some(b), Some(c)) => (a.trim(), b.trim(), c.trim()),
            _ => {
                return Err(LoadError::Parse {
                    file: "interactions",
                    line: lineno + 1,
                    reason: "expected user_id,item_id,timestamp".into(),
                })
            }
        };
        let &item_id = item_index.get(item).ok_or_else(|| LoadError::UnknownItem {
            line: lineno + 1,
            item_id: item.to_string(),
        })?;
        let ts: u64 = ts.parse().map_err(|_| LoadError::Parse {
            file: "interactions",
            line: lineno + 1,
            reason: format!("bad timestamp {ts:?}"),
        })?;
        let user_id = *user_index.entry(user.to_string()).or_insert_with(|| {
            maps.users.push(user.to_string());
            maps.users.len() - 1
        });
        // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
        if !seen_events.insert((user_id as u32, item_id as u32, ts)) {
            return Err(LoadError::DuplicateInteraction {
                line: lineno + 1,
                user_id: user.to_string(),
                item_id: item.to_string(),
            });
        }
        interactions.push(Interaction {
            // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
            user: user_id as u32,
            // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
            item: item_id as u32,
            timestamp: ts,
        });
    }
    if interactions.is_empty() {
        return Err(LoadError::EmptyDataset);
    }
    interactions.sort_by_key(|it| it.timestamp);

    let n_categories = maps.categories.len();
    let item_price_level = quantize(&prices, &categories, n_categories, n_price_levels, scheme);
    let dataset = Dataset {
        n_users: maps.users.len(),
        n_items: maps.items.len(),
        n_categories,
        n_price_levels,
        item_price: prices,
        item_category: categories,
        item_price_level,
        interactions,
    };
    dataset.validate();
    Ok((dataset, maps))
}

/// Loads a dataset from two CSV files on disk.
pub fn load_dataset(
    items_path: &Path,
    interactions_path: &Path,
    n_price_levels: usize,
    scheme: Quantization,
) -> Result<(Dataset, IdMaps), LoadError> {
    let items = fs::read_to_string(items_path)?;
    let inter = fs::read_to_string(interactions_path)?;
    parse_dataset(&items, &inter, n_price_levels, scheme)
}

/// Serializes a dataset back to `(items_csv, interactions_csv)` strings.
/// Ids are the dense indices (or the original ids when `maps` is given).
pub fn dataset_to_csv(dataset: &Dataset, maps: Option<&IdMaps>) -> (String, String) {
    let item_name =
        |i: usize| -> String { maps.map(|m| m.items[i].clone()).unwrap_or_else(|| i.to_string()) };
    let user_name =
        |u: usize| -> String { maps.map(|m| m.users[u].clone()).unwrap_or_else(|| u.to_string()) };
    let cat_name = |c: usize| -> String {
        maps.map(|m| m.categories[c].clone()).unwrap_or_else(|| c.to_string())
    };
    let mut items = String::from("item_id,price,category\n");
    for i in 0..dataset.n_items {
        let _ = writeln!(
            items,
            "{},{},{}",
            item_name(i),
            dataset.item_price[i],
            cat_name(dataset.item_category[i])
        );
    }
    let mut inter = String::from("user_id,item_id,timestamp\n");
    for it in &dataset.interactions {
        let _ = writeln!(
            inter,
            "{},{},{}",
            user_name(it.user as usize),
            item_name(it.item as usize),
            it.timestamp
        );
    }
    (items, inter)
}

/// Writes `contents` to `path` atomically: a temporary sibling is written
/// and fsynced first, then renamed over the target, so a crash mid-save
/// never leaves a half-written CSV behind.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("csv.tmp");
    let mut file = fs::File::create(&tmp)?;
    file.write_all(contents.as_bytes())?;
    file.sync_all()?;
    fs::rename(&tmp, path)
}

/// Writes a dataset to two CSV files. Each file is written atomically
/// (temp file + rename), so an interrupted save cannot tear an existing
/// dataset on disk.
pub fn save_dataset(
    dataset: &Dataset,
    maps: Option<&IdMaps>,
    items_path: &Path,
    interactions_path: &Path,
) -> io::Result<()> {
    let (items, inter) = dataset_to_csv(dataset, maps);
    write_atomic(items_path, &items)?;
    write_atomic(interactions_path, &inter)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ITEMS: &str = "item_id,price,category\n\
        espresso,2.5,coffee\n\
        latte,4.0,coffee\n\
        burger,12.0,food\n";
    const INTER: &str = "user_id,item_id,timestamp\n\
        alice,espresso,3\n\
        bob,burger,1\n\
        alice,latte,2\n";

    #[test]
    fn parses_and_indexes() {
        let (d, maps) = parse_dataset(ITEMS, INTER, 2, Quantization::Uniform).unwrap();
        assert_eq!(d.n_items, 3);
        assert_eq!(d.n_users, 2);
        assert_eq!(d.n_categories, 2);
        assert_eq!(maps.items, vec!["espresso", "latte", "burger"]);
        assert_eq!(maps.categories, vec!["coffee", "food"]);
        // Events sorted by timestamp: bob@1, alice@2, alice@3.
        assert_eq!(d.interactions[0].timestamp, 1);
        assert_eq!(d.interactions[2].timestamp, 3);
        // Quantization within category: espresso(2.5) level 0, latte(4.0)
        // level 1 (coffee range 2.5..4.0); burger alone -> level 0.
        assert_eq!(d.item_price_level, vec![0, 1, 0]);
    }

    #[test]
    fn rejects_unknown_item() {
        let bad = "user_id,item_id,timestamp\nalice,tea,1\n";
        let err = parse_dataset(ITEMS, bad, 2, Quantization::Uniform).unwrap_err();
        assert!(matches!(err, LoadError::UnknownItem { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_price_and_duplicate_item() {
        let bad_price = "item_id,price,category\nx,-1.0,a\n";
        let err = parse_dataset(bad_price, "h\n", 2, Quantization::Uniform).unwrap_err();
        assert!(err.to_string().contains("positive"), "{err}");

        let dup = "item_id,price,category\nx,1.0,a\nx,2.0,a\n";
        let err = parse_dataset(dup, "h\n", 2, Quantization::Uniform).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_ragged_rows_with_line_numbers() {
        let ragged = "item_id,price,category\nonlyone\n";
        let err = parse_dataset(ragged, "h\n", 2, Quantization::Uniform).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_truncated_interactions_row() {
        // A file cut off mid-row (e.g. a torn download) loses its trailing
        // fields; the error names the file and the exact line.
        let truncated = "user_id,item_id,timestamp\nalice,espresso,3\nbob,burg";
        let err = parse_dataset(ITEMS, truncated, 2, Quantization::Uniform).unwrap_err();
        assert!(matches!(err, LoadError::Parse { file: "interactions", line: 3, .. }), "{err}");
    }

    #[test]
    fn rejects_non_numeric_fields() {
        let bad_price = "item_id,price,category\nx,cheap,a\n";
        let err = parse_dataset(bad_price, "h\n", 2, Quantization::Uniform).unwrap_err();
        assert!(matches!(err, LoadError::Parse { file: "items", line: 2, .. }), "{err}");
        assert!(err.to_string().contains("bad price"), "{err}");

        let bad_ts = "user_id,item_id,timestamp\nalice,espresso,yesterday\n";
        let err = parse_dataset(ITEMS, bad_ts, 2, Quantization::Uniform).unwrap_err();
        assert!(matches!(err, LoadError::Parse { file: "interactions", line: 2, .. }), "{err}");
        assert!(err.to_string().contains("bad timestamp"), "{err}");
    }

    #[test]
    fn rejects_duplicate_interaction() {
        let dup = "user_id,item_id,timestamp\n\
            alice,espresso,3\n\
            bob,burger,1\n\
            alice,espresso,3\n";
        let err = parse_dataset(ITEMS, dup, 2, Quantization::Uniform).unwrap_err();
        match err {
            LoadError::DuplicateInteraction { line, user_id, item_id } => {
                assert_eq!(line, 4, "second occurrence is the offender");
                assert_eq!(user_id, "alice");
                assert_eq!(item_id, "espresso");
            }
            other => panic!("expected DuplicateInteraction, got {other}"),
        }
        // The same pair at a different time is a legitimate repeat purchase.
        let repeat = "user_id,item_id,timestamp\nalice,espresso,3\nalice,espresso,5\n";
        assert!(parse_dataset(ITEMS, repeat, 2, Quantization::Uniform).is_ok());
    }

    #[test]
    fn rejects_empty_dataset() {
        let err = parse_dataset(ITEMS, "user_id,item_id,timestamp\n", 2, Quantization::Uniform)
            .unwrap_err();
        assert!(matches!(err, LoadError::EmptyDataset), "{err}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(128))]

        // Malformed input must always come back as a typed `LoadError`,
        // never a panic: shuffle arbitrary tokens from a hostile alphabet
        // into both CSVs and parse.
        #[test]
        fn malformed_lines_never_panic(
            picks in proptest::prop::collection::vec((0usize..12, 0usize..12, 0usize..12), 1..20),
            as_items in 0u8..2,
        ) {
            const ALPHABET: [&str; 12] = [
                "alice", "espresso", "3", "-1", "2.5e308", "nan", "",
                ",", ",,", "\u{fffd}", "price", "item_id,price,category",
            ];
            let mut csv = String::from("h\n");
            for (a, b, c) in picks {
                csv.push_str(ALPHABET[a]);
                csv.push(',');
                csv.push_str(ALPHABET[b]);
                csv.push(',');
                csv.push_str(ALPHABET[c]);
                csv.push('\n');
            }
            // Result ignored: any Ok/Err is fine, only a panic would fail.
            if as_items == 0 {
                let _ = parse_dataset(&csv, INTER, 2, Quantization::Uniform);
            } else {
                let _ = parse_dataset(ITEMS, &csv, 2, Quantization::Uniform);
            }
        }
    }

    /// Interactions as (user name, item name, timestamp) triples — the
    /// identity that survives a CSV roundtrip (dense indices are assigned by
    /// first appearance, which changes once events are written sorted).
    fn named_events(d: &Dataset, maps: &IdMaps) -> Vec<(String, String, u64)> {
        d.interactions
            .iter()
            .map(|it| {
                (
                    maps.users[it.user as usize].clone(),
                    maps.items[it.item as usize].clone(),
                    it.timestamp,
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let (d, maps) = parse_dataset(ITEMS, INTER, 2, Quantization::Uniform).unwrap();
        let (items_csv, inter_csv) = dataset_to_csv(&d, Some(&maps));
        let (d2, maps2) = parse_dataset(&items_csv, &inter_csv, 2, Quantization::Uniform).unwrap();
        assert_eq!(named_events(&d, &maps), named_events(&d2, &maps2));
        assert_eq!(d.item_price, d2.item_price);
        assert_eq!(d.item_price_level, d2.item_price_level);
        assert_eq!(maps.items, maps2.items);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pup_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let items_path = dir.join("items.csv");
        let inter_path = dir.join("interactions.csv");
        let (d, maps) = parse_dataset(ITEMS, INTER, 2, Quantization::Uniform).unwrap();
        save_dataset(&d, Some(&maps), &items_path, &inter_path).unwrap();
        let (d2, maps2) = load_dataset(&items_path, &inter_path, 2, Quantization::Uniform).unwrap();
        assert_eq!(named_events(&d, &maps), named_events(&d2, &maps2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn synthetic_dataset_roundtrips_through_csv() {
        let s = crate::synthetic::generate(&crate::synthetic::GeneratorConfig {
            n_users: 30,
            n_items: 40,
            n_categories: 4,
            n_price_levels: 5,
            n_interactions: 500,
            kcore: 0,
            seed: 12,
            ..Default::default()
        });
        let (items_csv, inter_csv) = dataset_to_csv(&s.dataset, None);
        let (d2, _) = parse_dataset(&items_csv, &inter_csv, 5, Quantization::Uniform).unwrap();
        assert_eq!(s.dataset.n_items, d2.n_items);
        assert_eq!(s.dataset.interactions.len(), d2.interactions.len());
        assert_eq!(s.dataset.item_price_level, d2.item_price_level);
    }
}
