//! Category willingness-to-pay (CWTP) analysis (paper §II-A).
//!
//! CWTP is "the highest price a given user is willing to pay for items of a
//! given category", estimated from the interaction log as the highest price
//! *level* the user purchased in that category. The entropy of a user's CWTP
//! values across categories measures how (in)consistent her price
//! sensitivity is: the paper's Fig. 1 histogram, Table VI user groups and
//! Fig. 2 heatmaps all derive from this quantity.

use std::collections::HashMap;

use crate::types::Dataset;

/// Per-user CWTP: for each user, a map `category -> highest purchased price
/// level`.
pub fn cwtp_by_user(dataset: &Dataset) -> Vec<HashMap<usize, usize>> {
    let mut out: Vec<HashMap<usize, usize>> = vec![HashMap::new(); dataset.n_users];
    for it in &dataset.interactions {
        let i = it.item as usize;
        let c = dataset.item_category[i];
        let p = dataset.item_price_level[i];
        let entry = out[it.user as usize].entry(c).or_insert(p);
        if p > *entry {
            *entry = p;
        }
    }
    out
}

/// Shannon entropy (natural log) of a user's CWTP value multiset.
///
/// For a user whose CWTPs across her `C_u` categories are `{v_c}`, the
/// entropy of the empirical distribution of those values lies in
/// `[0, ln C_u]` (paper footnote 1). Returns `None` for users with no
/// interactions.
pub fn cwtp_entropy(cwtp: &HashMap<usize, usize>) -> Option<f64> {
    if cwtp.is_empty() {
        return None;
    }
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for &level in cwtp.values() {
        *counts.entry(level).or_insert(0) += 1;
    }
    let n = cwtp.len() as f64;
    let mut h = 0.0;
    for &count in counts.values() {
        let p = count as f64 / n;
        h -= p * p.ln();
    }
    Some(h)
}

/// CWTP entropy for every user (None for users without interactions).
pub fn entropy_by_user(dataset: &Dataset) -> Vec<Option<f64>> {
    cwtp_by_user(dataset).iter().map(cwtp_entropy).collect()
}

/// Splits user ids into (consistent, inconsistent) groups by comparing the
/// CWTP entropy against `threshold`; users without entropy are skipped.
pub fn group_users_by_entropy(
    entropies: &[Option<f64>],
    threshold: f64,
) -> (Vec<usize>, Vec<usize>) {
    let mut consistent = Vec::new();
    let mut inconsistent = Vec::new();
    for (u, e) in entropies.iter().enumerate() {
        match e {
            Some(h) if *h <= threshold => consistent.push(u),
            Some(_) => inconsistent.push(u),
            None => {}
        }
    }
    (consistent, inconsistent)
}

/// Median of the defined entropy values (the default group threshold).
pub fn median_entropy(entropies: &[Option<f64>]) -> Option<f64> {
    let mut vals: Vec<f64> = entropies.iter().flatten().copied().collect();
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(f64::total_cmp);
    Some(vals[vals.len() / 2])
}

/// A normalized histogram of entropy values with `bins` equal-width bins
/// over `[0, max]` — the data behind the paper's Fig. 1.
pub fn entropy_histogram(entropies: &[Option<f64>], bins: usize) -> Vec<(f64, f64)> {
    assert!(bins > 0, "need at least one bin");
    let vals: Vec<f64> = entropies.iter().flatten().copied().collect();
    if vals.is_empty() {
        return vec![(0.0, 0.0); bins];
    }
    let max = vals.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    let width = max / bins as f64;
    let mut counts = vec![0usize; bins];
    for &v in &vals {
        let b = ((v / width) as usize).min(bins - 1);
        counts[b] += 1;
    }
    // Probability density: count / (n * width), matching Fig. 1's y axis.
    let n = vals.len() as f64;
    counts
        .iter()
        .enumerate()
        .map(|(b, &c)| ((b as f64 + 0.5) * width, c as f64 / (n * width)))
        .collect()
}

/// The user x (category, price level) purchase-count heatmap of Fig. 2,
/// row-normalized to `[0, 1]` per user.
pub fn price_category_heatmap(dataset: &Dataset, user: usize) -> Vec<Vec<f64>> {
    assert!(user < dataset.n_users, "user out of range");
    let mut grid = vec![vec![0.0; dataset.n_price_levels]; dataset.n_categories];
    for it in &dataset.interactions {
        if it.user as usize != user {
            continue;
        }
        let i = it.item as usize;
        grid[dataset.item_category[i]][dataset.item_price_level[i]] += 1.0;
    }
    let max = grid.iter().flatten().cloned().fold(0.0f64, f64::max);
    if max > 0.0 {
        for row in &mut grid {
            for v in row {
                *v /= max;
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Interaction;

    fn dataset() -> Dataset {
        // Items: (category, price level)
        // 0: (0, 0)  1: (0, 2)  2: (1, 2)  3: (2, 0)
        Dataset {
            n_users: 3,
            n_items: 4,
            n_categories: 3,
            n_price_levels: 3,
            item_price: vec![1.0, 3.0, 3.0, 1.0],
            item_category: vec![0, 0, 1, 2],
            item_price_level: vec![0, 2, 2, 0],
            interactions: vec![
                Interaction { user: 0, item: 0, timestamp: 0 },
                Interaction { user: 0, item: 1, timestamp: 1 }, // cat 0 max level -> 2
                Interaction { user: 0, item: 2, timestamp: 2 }, // cat 1 -> 2
                Interaction { user: 1, item: 0, timestamp: 3 }, // cat 0 -> 0
                Interaction { user: 1, item: 3, timestamp: 4 }, // cat 2 -> 0
            ],
        }
    }

    #[test]
    fn cwtp_takes_max_level_per_category() {
        let c = cwtp_by_user(&dataset());
        assert_eq!(c[0][&0], 2);
        assert_eq!(c[0][&1], 2);
        assert_eq!(c[1][&0], 0);
        assert_eq!(c[1][&2], 0);
        assert!(c[2].is_empty());
    }

    #[test]
    fn entropy_zero_for_consistent_users() {
        let c = cwtp_by_user(&dataset());
        // User 0: CWTPs {2, 2} -> one distinct value -> entropy 0.
        assert_eq!(cwtp_entropy(&c[0]), Some(0.0));
        // User 1: {0, 0} -> 0 as well.
        assert_eq!(cwtp_entropy(&c[1]), Some(0.0));
        assert_eq!(cwtp_entropy(&c[2]), None);
    }

    #[test]
    fn entropy_max_for_fully_inconsistent_user() {
        let mut m = HashMap::new();
        m.insert(0, 0);
        m.insert(1, 1);
        m.insert(2, 2);
        let h = cwtp_entropy(&m).unwrap();
        assert!((h - 3.0f64.ln()).abs() < 1e-12, "uniform CWTPs should hit ln(C_u)");
    }

    #[test]
    fn entropy_bounded_by_ln_category_count() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let k = rng.gen_range(1..10usize);
            let mut m = HashMap::new();
            for c in 0..k {
                m.insert(c, rng.gen_range(0..5usize));
            }
            let h = cwtp_entropy(&m).unwrap();
            assert!(h >= -1e-12 && h <= (k as f64).ln() + 1e-12);
        }
    }

    #[test]
    fn grouping_splits_on_threshold() {
        let es = vec![Some(0.1), Some(0.9), None, Some(0.5)];
        let (cons, incons) = group_users_by_entropy(&es, 0.5);
        assert_eq!(cons, vec![0, 3]);
        assert_eq!(incons, vec![1]);
    }

    #[test]
    fn histogram_is_a_density() {
        let es: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64 / 100.0)).collect();
        let h = entropy_histogram(&es, 10);
        assert_eq!(h.len(), 10);
        let width = h[1].0 - h[0].0;
        let mass: f64 = h.iter().map(|&(_, d)| d * width).sum();
        assert!((mass - 1.0).abs() < 1e-9, "density must integrate to 1, got {mass}");
    }

    #[test]
    fn heatmap_is_normalized_and_sparse() {
        let g = price_category_heatmap(&dataset(), 0);
        assert_eq!(g.len(), 3);
        assert_eq!(g[0].len(), 3);
        assert_eq!(g[0][0], 1.0); // item 0 purchased once; max count is 1
        assert_eq!(g[0][2], 1.0);
        assert_eq!(g[2][0], 0.0);
        let empty = price_category_heatmap(&dataset(), 2);
        assert!(empty.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn synthetic_consistent_users_have_lower_entropy() {
        // The generator's planted consistency must be visible in CWTP
        // entropy — this is the premise of Fig. 1 and Table VI.
        let s = crate::synthetic::generate(&crate::synthetic::GeneratorConfig {
            n_users: 200,
            n_items: 300,
            n_categories: 10,
            n_price_levels: 10,
            n_interactions: 20_000,
            consistent_user_frac: 0.5,
            kcore: 0,
            seed: 99,
            ..Default::default()
        });
        let es = entropy_by_user(&s.dataset);
        let mut cons_sum = 0.0;
        let mut cons_n = 0.0;
        let mut incons_sum = 0.0;
        let mut incons_n = 0.0;
        for (u, e) in es.iter().enumerate() {
            let Some(h) = e else { continue };
            if s.truth.user_consistent[u] {
                cons_sum += h;
                cons_n += 1.0;
            } else {
                incons_sum += h;
                incons_n += 1.0;
            }
        }
        let cons_mean = cons_sum / cons_n;
        let incons_mean = incons_sum / incons_n;
        assert!(
            cons_mean < incons_mean,
            "planted consistent users must show lower CWTP entropy ({cons_mean:.3} vs {incons_mean:.3})"
        );
    }
}
