//! Price discretization (paper §II-B and §V-C2).
//!
//! Prices are continuous; the heterogeneous graph needs discrete price-level
//! nodes. Two schemes from the paper:
//!
//! - **Uniform quantization** (§II-B): normalize within the item's category
//!   price range and floor — `level = ⌊(price − min_c) / (max_c − min_c) · L⌋`.
//! - **Rank-based quantization** (§V-C2): rank items by price *within their
//!   category*, convert the rank to a percentile, multiply by `L` and take
//!   the integer part. Robust to skewed price distributions (Table IV).

/// Quantization scheme selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantization {
    /// Uniform within-category range quantization.
    Uniform,
    /// Rank/percentile within-category quantization.
    Rank,
}

/// Discretizes `prices` into `levels` price levels with the chosen scheme.
///
/// Both schemes operate per category, mirroring the paper's mobile-phone
/// example. Returns one level in `0..levels` per item.
///
/// # Panics
/// Panics when `levels == 0`, when a category id is out of range, or when
/// input lengths disagree.
pub fn quantize(
    prices: &[f64],
    categories: &[usize],
    n_categories: usize,
    levels: usize,
    scheme: Quantization,
) -> Vec<usize> {
    match scheme {
        Quantization::Uniform => uniform_quantize(prices, categories, n_categories, levels),
        Quantization::Rank => rank_quantize(prices, categories, n_categories, levels),
    }
}

/// Uniform within-category quantization (paper §II-B).
pub fn uniform_quantize(
    prices: &[f64],
    categories: &[usize],
    n_categories: usize,
    levels: usize,
) -> Vec<usize> {
    check_inputs(prices, categories, n_categories, levels);
    // Per-category min/max.
    let mut min = vec![f64::INFINITY; n_categories];
    let mut max = vec![f64::NEG_INFINITY; n_categories];
    for (&p, &c) in prices.iter().zip(categories) {
        min[c] = min[c].min(p);
        max[c] = max[c].max(p);
    }
    prices
        .iter()
        .zip(categories)
        .map(|(&p, &c)| {
            let range = max[c] - min[c];
            if range <= 0.0 {
                // Single-price category: everything lands on level 0.
                return 0;
            }
            // pup-lint: allow(as-cast-truncation) — level in [0, levels) after the floor and clamp
            let level = ((p - min[c]) / range * levels as f64).floor() as usize;
            // The max-priced item would otherwise land on `levels`.
            level.min(levels - 1)
        })
        .collect()
}

/// Rank-based within-category quantization (paper §V-C2).
///
/// Ties in price share the average rank of the tied block so that identical
/// prices always receive identical levels.
pub fn rank_quantize(
    prices: &[f64],
    categories: &[usize],
    n_categories: usize,
    levels: usize,
) -> Vec<usize> {
    check_inputs(prices, categories, n_categories, levels);
    let mut out = vec![0usize; prices.len()];
    // Bucket item indices by category.
    let mut by_cat: Vec<Vec<usize>> = vec![Vec::new(); n_categories];
    for (i, &c) in categories.iter().enumerate() {
        by_cat[c].push(i);
    }
    for mut sorted in by_cat {
        if sorted.is_empty() {
            continue;
        }
        let n = sorted.len() as f64;
        sorted.sort_by(|&a, &b| prices[a].total_cmp(&prices[b]));
        let mut i = 0;
        while i < sorted.len() {
            // Find the tied block [i, j).
            let mut j = i + 1;
            while j < sorted.len() && prices[sorted[j]] == prices[sorted[i]] {
                j += 1;
            }
            // Average 0-based rank of the block, converted to a percentile.
            let avg_rank = (i + j - 1) as f64 / 2.0;
            let percentile = avg_rank / n;
            // pup-lint: allow(as-cast-truncation) — level clamped to levels - 1 on the same line
            let level = ((percentile * levels as f64) as usize).min(levels - 1);
            for &item in &sorted[i..j] {
                out[item] = level;
            }
            i = j;
        }
    }
    out
}

fn check_inputs(prices: &[f64], categories: &[usize], n_categories: usize, levels: usize) {
    assert!(levels > 0, "at least one price level required");
    assert_eq!(prices.len(), categories.len(), "one category per price required");
    for &c in categories {
        assert!(c < n_categories, "category {c} out of {n_categories}");
    }
    for &p in prices {
        assert!(p.is_finite(), "prices must be finite");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mobile_phone_example() {
        // "price range [200, 3000], 10 levels; a phone at 1000 has level
        // floor((1000-200)/(3000-200) * 10) = 2".
        let prices = vec![200.0, 1000.0, 3000.0];
        let cats = vec![0, 0, 0];
        let levels = uniform_quantize(&prices, &cats, 1, 10);
        assert_eq!(levels[1], 2);
        assert_eq!(levels[0], 0);
        assert_eq!(levels[2], 9, "max price clamps to the top level");
    }

    #[test]
    fn uniform_is_per_category() {
        // Same raw price can land on different levels in different categories.
        let prices = vec![10.0, 20.0, 10.0, 110.0];
        let cats = vec![0, 0, 1, 1];
        let levels = uniform_quantize(&prices, &cats, 2, 2);
        assert_eq!(levels, vec![0, 1, 0, 1]);
    }

    #[test]
    fn uniform_single_price_category_is_level_zero() {
        let levels = uniform_quantize(&[5.0, 5.0], &[0, 0], 1, 10);
        assert_eq!(levels, vec![0, 0]);
    }

    #[test]
    fn rank_handles_skewed_distribution_evenly() {
        // Heavily skewed prices: uniform quantization crams most items into
        // level 0 while rank quantization spreads them evenly (Table IV's
        // motivation).
        let prices: Vec<f64> = (0..100).map(|i| if i < 99 { i as f64 } else { 1e6 }).collect();
        let cats = vec![0usize; 100];
        let uni = uniform_quantize(&prices, &cats, 1, 10);
        let rank = rank_quantize(&prices, &cats, 1, 10);
        let uni_zero = uni.iter().filter(|&&l| l == 0).count();
        assert!(uni_zero >= 99, "uniform should collapse under skew, got {uni_zero}");
        for l in 0..10 {
            let count = rank.iter().filter(|&&x| x == l).count();
            assert_eq!(count, 10, "rank quantization should be balanced at level {l}");
        }
    }

    #[test]
    fn rank_is_monotone_within_category() {
        let prices = vec![3.0, 1.0, 7.0, 5.0];
        let cats = vec![0usize; 4];
        let levels = rank_quantize(&prices, &cats, 1, 4);
        assert_eq!(levels, vec![1, 0, 3, 2]);
    }

    #[test]
    fn rank_ties_share_levels() {
        let prices = vec![2.0, 2.0, 2.0, 9.0];
        let cats = vec![0usize; 4];
        let levels = rank_quantize(&prices, &cats, 1, 4);
        assert_eq!(levels[0], levels[1]);
        assert_eq!(levels[1], levels[2]);
        assert!(levels[3] > levels[0]);
    }

    #[test]
    fn all_levels_in_range_for_both_schemes() {
        let prices: Vec<f64> = (0..57).map(|i| (i as f64 * 13.7) % 29.0).collect();
        let cats: Vec<usize> = (0..57).map(|i| i % 3).collect();
        for scheme in [Quantization::Uniform, Quantization::Rank] {
            let levels = quantize(&prices, &cats, 3, 5, scheme);
            assert!(levels.iter().all(|&l| l < 5), "{scheme:?} produced out-of-range level");
        }
    }

    #[test]
    #[should_panic(expected = "at least one price level")]
    fn zero_levels_panics() {
        let _ = uniform_quantize(&[1.0], &[0], 1, 0);
    }
}
