//! Temporal train/validation/test splitting (paper §V-A1).
//!
//! "We first rank the records according to timestamps and then select the
//! early 60% as the training set, middle 20% as the validation set, and the
//! last 20% as the test set."
//!
//! Pairs are deduplicated *within* each part and a pair that already appears
//! in an earlier part is dropped from later parts (re-buying a training item
//! is not a new recommendation target).

use std::collections::HashSet;

use crate::types::Dataset;

/// Fractions of the interaction log assigned to train and validation; the
/// remainder is test.
#[derive(Clone, Copy, Debug)]
pub struct SplitRatios {
    /// Fraction of events in the training set (paper: 0.6).
    pub train: f64,
    /// Fraction of events in the validation set (paper: 0.2).
    pub valid: f64,
}

impl SplitRatios {
    /// The paper's 60/20/20 split.
    pub const PAPER: Self = Self { train: 0.6, valid: 0.2 };
}

/// A temporal split of a [`Dataset`] into unique `(user, item)` pairs.
#[derive(Clone, Debug)]
pub struct Split {
    /// Number of users in the source dataset.
    pub n_users: usize,
    /// Number of items in the source dataset.
    pub n_items: usize,
    /// Unique training pairs, in temporal order.
    pub train: Vec<(usize, usize)>,
    /// Unique validation pairs not seen in train.
    pub valid: Vec<(usize, usize)>,
    /// Unique test pairs not seen in train/valid.
    pub test: Vec<(usize, usize)>,
}

impl Split {
    /// Per-user sorted training item lists (used for negative sampling and
    /// for excluding seen items during evaluation).
    pub fn train_items_by_user(&self) -> Vec<Vec<u32>> {
        let mut lists = vec![Vec::new(); self.n_users];
        for &(u, i) in &self.train {
            // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
            lists[u].push(i as u32);
        }
        for l in &mut lists {
            l.sort_unstable();
        }
        lists
    }

    /// Per-user sorted test item lists (evaluation ground truth).
    pub fn test_items_by_user(&self) -> Vec<Vec<u32>> {
        let mut lists = vec![Vec::new(); self.n_users];
        for &(u, i) in &self.test {
            // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
            lists[u].push(i as u32);
        }
        for l in &mut lists {
            l.sort_unstable();
        }
        lists
    }

    /// Per-user sorted validation item lists.
    pub fn valid_items_by_user(&self) -> Vec<Vec<u32>> {
        let mut lists = vec![Vec::new(); self.n_users];
        for &(u, i) in &self.valid {
            // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
            lists[u].push(i as u32);
        }
        for l in &mut lists {
            l.sort_unstable();
        }
        lists
    }
}

/// Splits the dataset's interaction log temporally by the given ratios.
///
/// # Panics
/// Panics when the ratios are outside `(0, 1)` or sum to ≥ 1.
pub fn temporal_split(dataset: &Dataset, ratios: SplitRatios) -> Split {
    assert!(ratios.train > 0.0 && ratios.valid >= 0.0, "ratios must be non-negative");
    assert!(ratios.train + ratios.valid < 1.0, "train + valid must leave room for test");
    // `Dataset::validate` guarantees timestamp order.
    let n = dataset.interactions.len();
    // pup-lint: allow(as-cast-truncation) — split boundary in [0, n] by the ratio contract
    let train_end = (n as f64 * ratios.train).floor() as usize;
    // pup-lint: allow(as-cast-truncation) — split boundary in [0, n] by the ratio contract
    let valid_end = (n as f64 * (ratios.train + ratios.valid)).floor() as usize;

    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(n);
    let mut collect = |range: std::ops::Range<usize>| -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for it in &dataset.interactions[range] {
            if seen.insert((it.user, it.item)) {
                out.push((it.user as usize, it.item as usize));
            }
        }
        out
    };
    let train = collect(0..train_end);
    let valid = collect(train_end..valid_end);
    let test = collect(valid_end..n);

    Split { n_users: dataset.n_users, n_items: dataset.n_items, train, valid, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Interaction;

    fn sequential_dataset(n_users: usize, n_items: usize, events: &[(u32, u32)]) -> Dataset {
        Dataset {
            n_users,
            n_items,
            n_categories: 1,
            n_price_levels: 1,
            item_price: vec![1.0; n_items],
            item_category: vec![0; n_items],
            item_price_level: vec![0; n_items],
            interactions: events
                .iter()
                .enumerate()
                .map(|(t, &(u, i))| Interaction { user: u, item: i, timestamp: t as u64 })
                .collect(),
        }
    }

    #[test]
    fn proportions_follow_ratios() {
        let events: Vec<(u32, u32)> = (0..100).map(|t| (t % 10, (t * 7 + t / 10) % 50)).collect();
        let d = sequential_dataset(10, 50, &events);
        let s = temporal_split(&d, SplitRatios::PAPER);
        // All pairs are unique here, so counts match the event split exactly.
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.valid.len(), 20);
        assert_eq!(s.test.len(), 20);
    }

    #[test]
    fn split_respects_temporal_order() {
        let events: Vec<(u32, u32)> = (0..50).map(|t| (0, t)).collect();
        let d = sequential_dataset(1, 50, &events);
        let s = temporal_split(&d, SplitRatios::PAPER);
        let max_train = s.train.iter().map(|&(_, i)| i).max().unwrap();
        let min_test = s.test.iter().map(|&(_, i)| i).min().unwrap();
        assert!(max_train < min_test, "training events must precede test events");
    }

    #[test]
    fn later_parts_drop_pairs_seen_earlier() {
        // The same (0,0) pair appears in every part; only train keeps it.
        let mut events = vec![(0, 0); 6];
        events.extend([(0, 1), (0, 2), (0, 3), (0, 4)]);
        let d = sequential_dataset(1, 5, &events);
        let s = temporal_split(&d, SplitRatios::PAPER);
        assert_eq!(s.train, vec![(0, 0)]);
        assert!(!s.valid.contains(&(0, 0)));
        assert!(!s.test.contains(&(0, 0)));
        let all: Vec<_> = s.train.iter().chain(&s.valid).chain(&s.test).collect();
        let distinct: HashSet<_> = all.iter().collect();
        assert_eq!(all.len(), distinct.len(), "no pair may appear twice across parts");
    }

    #[test]
    fn per_user_lists_cover_split() {
        let events: Vec<(u32, u32)> = (0..40).map(|t| (t % 4, t % 10)).collect();
        let d = sequential_dataset(4, 10, &events);
        let s = temporal_split(&d, SplitRatios::PAPER);
        let train_lists = s.train_items_by_user();
        let total: usize = train_lists.iter().map(Vec::len).sum();
        assert_eq!(total, s.train.len());
        for (u, list) in train_lists.iter().enumerate() {
            for &i in list {
                assert!(s.train.contains(&(u, i as usize)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "room for test")]
    fn rejects_ratios_without_test() {
        let d = sequential_dataset(1, 1, &[(0, 0)]);
        let _ = temporal_split(&d, SplitRatios { train: 0.8, valid: 0.2 });
    }

    #[test]
    fn empty_valid_ratio_is_allowed() {
        let events: Vec<(u32, u32)> = (0..10).map(|t| (0, t)).collect();
        let d = sequential_dataset(1, 10, &events);
        let s = temporal_split(&d, SplitRatios { train: 0.8, valid: 0.0 });
        assert_eq!(s.train.len(), 8);
        assert!(s.valid.is_empty());
        assert_eq!(s.test.len(), 2);
    }
}
