//! Dataset statistics (the paper's Table I).

use std::fmt;

use crate::types::Dataset;

/// Summary statistics of a dataset, one row of Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Display name of the dataset.
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of categories that actually contain items.
    pub n_categories: usize,
    /// Number of price levels actually used by items.
    pub n_price_levels: usize,
    /// Number of unique user–item interactions (binary `R` entries).
    pub n_interactions: usize,
    /// `n_interactions / (n_users * n_items)`.
    pub density: f64,
    /// Mean unique interactions per user.
    pub interactions_per_user: f64,
}

/// Computes Table I statistics for a dataset.
pub fn dataset_stats(name: &str, dataset: &Dataset) -> DatasetStats {
    let unique = dataset.unique_pairs().len();
    let used_categories = {
        let mut seen = vec![false; dataset.n_categories];
        for &c in &dataset.item_category {
            seen[c] = true;
        }
        seen.iter().filter(|&&s| s).count()
    };
    let used_levels = {
        let mut seen = vec![false; dataset.n_price_levels];
        for &p in &dataset.item_price_level {
            seen[p] = true;
        }
        seen.iter().filter(|&&s| s).count()
    };
    let cells = (dataset.n_users * dataset.n_items).max(1);
    DatasetStats {
        name: name.to_string(),
        n_users: dataset.n_users,
        n_items: dataset.n_items,
        n_categories: used_categories,
        n_price_levels: used_levels,
        n_interactions: unique,
        density: unique as f64 / cells as f64,
        interactions_per_user: unique as f64 / dataset.n_users.max(1) as f64,
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>8} {:>8} {:>6} {:>7} {:>13} {:>9.5} {:>8.1}",
            self.name,
            self.n_users,
            self.n_items,
            self.n_categories,
            self.n_price_levels,
            self.n_interactions,
            self.density,
            self.interactions_per_user,
        )
    }
}

/// Header matching [`DatasetStats`]'s `Display` columns.
pub const STATS_HEADER: &str =
    "dataset        #users   #items  #cate  #price #interactions   density  int/usr";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Interaction;

    #[test]
    fn stats_count_unique_interactions() {
        let d = Dataset {
            n_users: 2,
            n_items: 2,
            n_categories: 3,
            n_price_levels: 4,
            item_price: vec![1.0, 2.0],
            item_category: vec![0, 2],
            item_price_level: vec![0, 3],
            interactions: vec![
                Interaction { user: 0, item: 0, timestamp: 0 },
                Interaction { user: 0, item: 0, timestamp: 1 }, // repeat
                Interaction { user: 1, item: 1, timestamp: 2 },
            ],
        };
        let s = dataset_stats("toy", &d);
        assert_eq!(s.n_interactions, 2);
        assert_eq!(s.n_categories, 2, "only categories with items count");
        assert_eq!(s.n_price_levels, 2, "only used price levels count");
        assert!((s.density - 0.5).abs() < 1e-12);
        assert!((s.interactions_per_user - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_one_line() {
        let d = Dataset {
            n_users: 1,
            n_items: 1,
            n_categories: 1,
            n_price_levels: 1,
            item_price: vec![1.0],
            item_category: vec![0],
            item_price_level: vec![0],
            interactions: vec![Interaction { user: 0, item: 0, timestamp: 0 }],
        };
        let s = dataset_stats("tiny", &d);
        let line = s.to_string();
        assert!(line.contains("tiny"));
        assert!(!line.contains('\n'));
    }
}
