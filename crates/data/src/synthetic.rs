//! Synthetic price-aware interaction generators.
//!
//! The paper evaluates on proprietary snapshots of Yelp2018, Beibei and
//! Amazon. Those exact logs are unavailable, so this module generates
//! datasets from a *ground-truth utility model that plants exactly the causal
//! structure the paper measures*:
//!
//! 1. a user purchases an item only when it matches her **interest** *and*
//!    its price is **affordable** for her (§I: "only when both the item is of
//!    interest and its price is acceptable, will the user purchase it");
//! 2. affordability is **category-dependent**: each user has a per-category
//!    willingness-to-pay (CWTP, §II-A), and a configurable fraction of users
//!    is *consistent* (one budget percentile across categories) vs
//!    *inconsistent* (independent percentile per category) — reproducing the
//!    entropy histogram of Fig. 1 and the user groups of Table VI.
//!
//! Because the generator's ground truth is returned alongside the dataset,
//! tests can verify that models recover the planted structure, and the
//! cold-start experiments (Fig. 6) can rely on WTP being defined even for
//! categories a user never explored.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kcore::kcore_filter;
use crate::quantize::{quantize, Quantization};
use crate::types::{Dataset, Interaction};

/// How a user's willingness-to-pay shapes the purchase probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PriceResponse {
    /// Monotone gate: anything at or below the WTP is acceptable
    /// (logistic in `(wtp - price)`, sharpened by `price_weight`).
    Gate,
    /// Peaked response: purchases concentrate *around* the user's WTP for
    /// the category (Gaussian in `price/wtp`, width relative to the WTP).
    /// This matches the paper's Fig. 2 observation that "the consumption of
    /// a user on a category mostly concentrates on one price level" — a
    /// three-way (user, category, price) effect that pairwise feature
    /// models cannot represent but graph propagation can.
    Peak {
        /// Width of the peak relative to the WTP (e.g. 0.3).
        relative_width: f64,
    },
}

/// Shape of the raw price distribution within a category.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PriceDistribution {
    /// Uniform over the category's price range (benign for uniform
    /// quantization).
    Uniform,
    /// Log-normal with the given sigma: a long right tail, the situation
    /// where rank-based quantization wins (Table IV).
    LogNormal {
        /// Standard deviation of the underlying normal; ~1.0 is heavy-tailed.
        sigma: f64,
    },
}

/// Configuration of the synthetic generator.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Number of users before k-core filtering.
    pub n_users: usize,
    /// Number of items before k-core filtering.
    pub n_items: usize,
    /// Number of item categories.
    pub n_categories: usize,
    /// Number of discretized price levels.
    pub n_price_levels: usize,
    /// Number of interaction events to sample.
    pub n_interactions: usize,
    /// Fraction of users whose price sensitivity is consistent across
    /// categories (low CWTP entropy).
    pub consistent_user_frac: f64,
    /// Raw price distribution within categories.
    pub price_distribution: PriceDistribution,
    /// Dimension of the latent interest space.
    pub interest_dim: usize,
    /// Sharpness of the affordability gate: larger means price matters more.
    pub price_weight: f64,
    /// Shape of the price response (monotone gate vs peaked, see
    /// [`PriceResponse`]).
    pub price_response: PriceResponse,
    /// Popularity skew exponent; 0 disables popularity effects.
    pub popularity_skew: f64,
    /// How much of an item's latent appeal is shared with its category
    /// (0 = fully idiosyncratic items, 1 = category-determined). Real items
    /// within a category are substitutes sharing appeal factors; fully iid
    /// latents reward per-item memorization and penalize neighborhood
    /// smoothing, which no real catalog does.
    pub category_coherence: f64,
    /// How many categories a user is interested in: uniform in this range.
    pub categories_per_user: (usize, usize),
    /// Probability that an event imitates a 3-hop collaborative walk
    /// (user → own past item → co-purchaser → their item) instead of
    /// sampling from the utility model. Real logs carry this multi-hop CF
    /// structure (paper §V-F's user-item-user-item paths); a purely
    /// featural utility would be exactly representable by an FM. Imitated
    /// purchases are still gated by the imitator's own affordability.
    pub imitation_prob: f64,
    /// Fraction of the timeline over which new items keep arriving
    /// (0 = the whole catalog exists from the start). Growing catalogs are
    /// what makes temporal evaluation hard: late-arriving items are sparse
    /// in training, so models must generalize through price and category —
    /// the regime the paper's GCN design targets. One item per category is
    /// always available from t = 0.
    pub arrival_span: f64,
    /// Price quantization scheme for `item_price_level`.
    pub quantization: Quantization,
    /// k-core threshold applied after sampling (paper: 10). 0 disables.
    pub kcore: usize,
    /// RNG seed: the same seed always yields the identical dataset.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            n_users: 500,
            n_items: 400,
            n_categories: 20,
            n_price_levels: 10,
            n_interactions: 12_000,
            consistent_user_frac: 0.6,
            price_distribution: PriceDistribution::Uniform,
            interest_dim: 8,
            price_weight: 3.0,
            price_response: PriceResponse::Gate,
            popularity_skew: 0.8,
            category_coherence: 0.0,
            categories_per_user: (3, 8),
            imitation_prob: 0.0,
            arrival_span: 0.0,
            quantization: Quantization::Uniform,
            kcore: 5,
            seed: 2020,
        }
    }
}

/// The planted ground truth behind a synthetic dataset. Indices are aligned
/// with the (k-core filtered) [`Dataset`].
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// Per user, per category: the raw price this user is willing to pay.
    pub user_wtp: Vec<Vec<f64>>,
    /// Whether the user's budget percentile is shared across categories.
    pub user_consistent: Vec<bool>,
    /// Per user: category affinity weights (sum to 1; zero outside the
    /// user's interest set).
    pub user_affinity: Vec<Vec<f64>>,
    /// Latent interest vector per user.
    pub user_interest: Vec<Vec<f64>>,
    /// Latent vector per item.
    pub item_latent: Vec<Vec<f64>>,
    /// Popularity weight per item.
    pub item_popularity: Vec<f64>,
}

/// A generated dataset together with its ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The interaction log, quantized prices, categories.
    pub dataset: Dataset,
    /// The generator's planted parameters, re-indexed to match `dataset`.
    pub truth: GroundTruth,
}

/// Generates a synthetic dataset from the config (deterministic per seed).
pub fn generate(config: &GeneratorConfig) -> SyntheticDataset {
    assert!(config.n_users > 0 && config.n_items > 0, "need users and items");
    assert!(config.n_categories > 0, "need at least one category");
    assert!(config.n_price_levels > 0, "need at least one price level");
    assert!(
        (0.0..=1.0).contains(&config.consistent_user_frac),
        "consistent_user_frac must be a fraction"
    );
    assert!(
        config.categories_per_user.0 >= 1
            && config.categories_per_user.0 <= config.categories_per_user.1,
        "categories_per_user must be a non-empty range"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- Items -----------------------------------------------------------
    // Category sizes follow a mild Zipf so some categories are much larger,
    // as in real catalogs. Base price scale differs per category (a phone
    // costs more than a snack), which is what makes CWTP category-dependent.
    let cat_weights: Vec<f64> =
        (0..config.n_categories).map(|c| 1.0 / (c as f64 + 1.0).powf(0.6)).collect();
    let cat_base_price: Vec<f64> =
        (0..config.n_categories).map(|_| 10.0 * (rng.gen_range(0.0..2.5f64)).exp()).collect();
    assert!(
        (0.0..=1.0).contains(&config.category_coherence),
        "category_coherence must be a fraction"
    );
    let cat_latent: Vec<Vec<f64>> =
        (0..config.n_categories).map(|_| unit_vector(config.interest_dim, &mut rng)).collect();

    let mut item_category = Vec::with_capacity(config.n_items);
    let mut item_price = Vec::with_capacity(config.n_items);
    let mut item_popularity = Vec::with_capacity(config.n_items);
    let mut item_latent = Vec::with_capacity(config.n_items);
    for i in 0..config.n_items {
        // Guarantee every category is non-empty, then sample the rest.
        let c = if i < config.n_categories { i } else { weighted_index(&cat_weights, &mut rng) };
        item_category.push(c);
        let price = match config.price_distribution {
            PriceDistribution::Uniform => cat_base_price[c] * rng.gen_range(0.5..5.0),
            PriceDistribution::LogNormal { sigma } => {
                cat_base_price[c] * (standard_normal(&mut rng) * sigma).exp()
            }
        };
        item_price.push(price);
        item_popularity.push((standard_normal(&mut rng) * config.popularity_skew).exp());
        let own = unit_vector(config.interest_dim, &mut rng);
        let g = config.category_coherence;
        let mixed: Vec<f64> =
            cat_latent[c].iter().zip(&own).map(|(cv, ov)| g * cv + (1.0 - g) * ov).collect();
        let norm = mixed.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
        item_latent.push(mixed.into_iter().map(|x| x / norm).collect::<Vec<f64>>());
    }

    // Per-category sorted price lists for WTP quantiles.
    let mut cat_prices: Vec<Vec<f64>> = vec![Vec::new(); config.n_categories];
    for (i, &c) in item_category.iter().enumerate() {
        cat_prices[c].push(item_price[i]);
    }
    for p in &mut cat_prices {
        p.sort_by(f64::total_cmp);
    }
    let mut cat_items: Vec<Vec<usize>> = vec![Vec::new(); config.n_categories];
    for (i, &c) in item_category.iter().enumerate() {
        cat_items[c].push(i);
    }

    // --- Users -----------------------------------------------------------
    // pup-lint: allow(as-cast-truncation) — fraction of n_users; fits usize
    let n_consistent = (config.n_users as f64 * config.consistent_user_frac).round() as usize;
    let mut user_wtp = Vec::with_capacity(config.n_users);
    let mut user_consistent = Vec::with_capacity(config.n_users);
    let mut user_affinity = Vec::with_capacity(config.n_users);
    let mut user_interest = Vec::with_capacity(config.n_users);
    let mut user_activity = Vec::with_capacity(config.n_users);
    for u in 0..config.n_users {
        let consistent = u < n_consistent;
        user_consistent.push(consistent);
        let global_percentile = rng.gen_range(0.15..0.95);
        let wtp: Vec<f64> = (0..config.n_categories)
            .map(|c| {
                let pct = if consistent { global_percentile } else { rng.gen_range(0.15..0.95) };
                quantile(&cat_prices[c], pct)
            })
            .collect();
        user_wtp.push(wtp);

        let k = rng
            .gen_range(config.categories_per_user.0..=config.categories_per_user.1)
            .min(config.n_categories);
        let mut affinity = vec![0.0; config.n_categories];
        // Sorted Vec, not HashSet: iteration order must be deterministic so
        // the same seed always produces the same dataset.
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let c = weighted_index(&cat_weights, &mut rng);
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        chosen.sort_unstable();
        let mut total = 0.0;
        for &c in &chosen {
            let w = rng.gen_range(0.2..1.0f64);
            affinity[c] = w;
            total += w;
        }
        for a in &mut affinity {
            *a /= total;
        }
        user_affinity.push(affinity);
        user_interest.push(unit_vector(config.interest_dim, &mut rng));
        user_activity.push((standard_normal(&mut rng) * 0.8).exp());
    }

    // --- Interactions ------------------------------------------------------
    // Purchase weight of item i for user u in category c:
    //   popularity_i × interest(u,i) × affordability(u,c,i)
    // with affordability a logistic gate on (wtp - price) sharpened by
    // `price_weight`. This is the "interest AND acceptable price" rule.
    assert!((0.0..=1.0).contains(&config.imitation_prob), "imitation_prob must be a probability");
    assert!((0.0..=1.0).contains(&config.arrival_span), "arrival_span must be a fraction");
    // Item arrival times: the first item of each category is live from the
    // start (the `i < n_categories` items by construction); the rest arrive
    // uniformly over the configured span of the timeline.
    let item_arrival: Vec<u64> = (0..config.n_items)
        .map(|i| {
            // pup-lint: allow(float-eq) — 0.0 is the documented "no staggering" sentinel
            if i < config.n_categories || config.arrival_span == 0.0 {
                0
            } else {
                let horizon = config.n_interactions as f64 * config.arrival_span;
                rng.gen_range(0.0..horizon) as u64
            }
        })
        .collect();
    let mut interactions = Vec::with_capacity(config.n_interactions);
    let mut weights_buf: Vec<f64> = Vec::new();
    // Histories powering the collaborative-imitation walks.
    let mut user_history: Vec<Vec<usize>> = vec![Vec::new(); config.n_users];
    let mut item_buyers: Vec<Vec<usize>> = vec![Vec::new(); config.n_items];
    let price_affinity = |wtp: f64, price: f64| -> f64 {
        match config.price_response {
            PriceResponse::Gate => {
                let rel = (wtp - price) / wtp.max(1e-9);
                sigmoid(rel * config.price_weight * 4.0)
            }
            PriceResponse::Peak { relative_width } => {
                let z = (price - wtp) / (wtp.max(1e-9) * relative_width.max(1e-6));
                (-z * z).exp()
            }
        }
    };
    let afford = |u: usize, i: usize, item_category: &[usize], user_wtp: &[Vec<f64>]| {
        let c = item_category[i];
        price_affinity(user_wtp[u][c], item_price[i])
    };
    for t in 0..config.n_interactions {
        let u = weighted_index(&user_activity, &mut rng);

        // Collaborative imitation: follow a user -> item -> co-purchaser ->
        // item walk, still gated by the imitator's own affordability.
        let mut chosen: Option<usize> = None;
        if config.imitation_prob > 0.0
            && !user_history[u].is_empty()
            && rng.gen::<f64>() < config.imitation_prob
        {
            let j0 = user_history[u][rng.gen_range(0..user_history[u].len())];
            let buyers = &item_buyers[j0];
            if !buyers.is_empty() {
                let v = buyers[rng.gen_range(0..buyers.len())];
                if v != u {
                    let j = user_history[v][rng.gen_range(0..user_history[v].len())];
                    if rng.gen::<f64>() < afford(u, j, &item_category, &user_wtp) {
                        chosen = Some(j);
                    }
                }
            }
        }

        // Utility-model sampling (the default path and the fallback).
        let item = chosen.unwrap_or_else(|| {
            let c = weighted_index(&user_affinity[u], &mut rng);
            let items = &cat_items[c];
            debug_assert!(!items.is_empty(), "every category has at least one item");
            weights_buf.clear();
            let wtp = user_wtp[u][c];
            for &i in items {
                if item_arrival[i] > t as u64 {
                    // Not on the market yet.
                    weights_buf.push(0.0);
                    continue;
                }
                let interest = dot(&user_interest[u], &item_latent[i]).clamp(-1.0, 1.0);
                // Map interest from [-1,1] to a positive preference weight.
                let interest_w = (interest * 2.0).exp();
                let afford = price_affinity(wtp, item_price[i]);
                weights_buf.push(item_popularity[i] * interest_w * afford + 1e-12);
            }
            items[weighted_index(&weights_buf, &mut rng)]
        });

        user_history[u].push(item);
        item_buyers[item].push(u);
        // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
        interactions.push(Interaction { user: u as u32, item: item as u32, timestamp: t as u64 });
    }

    let item_price_level = quantize(
        &item_price,
        &item_category,
        config.n_categories,
        config.n_price_levels,
        config.quantization,
    );

    let dataset = Dataset {
        n_users: config.n_users,
        n_items: config.n_items,
        n_categories: config.n_categories,
        n_price_levels: config.n_price_levels,
        item_price,
        item_category,
        item_price_level,
        interactions,
    };
    dataset.validate();

    let truth = GroundTruth {
        user_wtp,
        user_consistent,
        user_affinity,
        user_interest,
        item_latent,
        item_popularity,
    };

    if config.kcore > 0 {
        let r = kcore_filter(&dataset, config.kcore);
        let truth = GroundTruth {
            user_wtp: r.user_map.iter().map(|&u| truth.user_wtp[u].clone()).collect(),
            user_consistent: r.user_map.iter().map(|&u| truth.user_consistent[u]).collect(),
            user_affinity: r.user_map.iter().map(|&u| truth.user_affinity[u].clone()).collect(),
            user_interest: r.user_map.iter().map(|&u| truth.user_interest[u].clone()).collect(),
            item_latent: r.item_map.iter().map(|&i| truth.item_latent[i].clone()).collect(),
            item_popularity: r.item_map.iter().map(|&i| truth.item_popularity[i]).collect(),
        };
        SyntheticDataset { dataset: r.dataset, truth }
    } else {
        SyntheticDataset { dataset, truth }
    }
}

/// A Yelp2018-like dataset (89 restaurant categories, 4 price levels shown
/// as dollar signs, ~24 interactions/user). `scale` shrinks the node counts;
/// `1.0` approximates the paper's Table I sizes.
pub fn yelp_like(scale: f64, seed: u64) -> SyntheticDataset {
    let n_items = scaled(18_907, scale, 150);
    let cfg = GeneratorConfig {
        n_users: scaled(20_637, scale, 120),
        n_items,
        // Keep >= ~12 items per category so k-core filtering has support.
        n_categories: 89.min((n_items / 12).max(8)),
        n_price_levels: 4,
        // 2x the paper's post-filter count: the paper filtered a denser raw
        // log down to these sizes, so we oversample before k-core filtering.
        n_interactions: scaled(2 * 505_785, scale, 6_000),
        consistent_user_frac: 0.6,
        price_distribution: PriceDistribution::Uniform,
        // Purchases concentrate around a per-category price point (the
        // paper's Fig. 2 observation), the log carries multi-hop CF
        // structure, and the catalog grows over time.
        price_response: PriceResponse::Peak { relative_width: 0.3 },
        imitation_prob: 0.2,
        arrival_span: 0.6,
        categories_per_user: (1, 8),
        category_coherence: 0.5,
        kcore: 10,
        quantization: Quantization::Uniform,
        seed,
        ..GeneratorConfig::default()
    };
    generate(&cfg)
}

/// A Beibei-like dataset (110 e-commerce categories, 10 price levels,
/// continuous prices, ~13 interactions/user).
pub fn beibei_like(scale: f64, seed: u64) -> SyntheticDataset {
    let n_items = scaled(39_303, scale, 200);
    let cfg = GeneratorConfig {
        n_users: scaled(52_767, scale, 150),
        n_items,
        n_categories: 110.min((n_items / 12).max(8)),
        n_price_levels: 10,
        n_interactions: scaled(2 * 677_065, scale, 8_000),
        consistent_user_frac: 0.55,
        price_distribution: PriceDistribution::LogNormal { sigma: 0.6 },
        price_response: PriceResponse::Peak { relative_width: 0.3 },
        imitation_prob: 0.2,
        arrival_span: 0.6,
        categories_per_user: (1, 8),
        category_coherence: 0.5,
        kcore: 10,
        quantization: Quantization::Uniform,
        seed,
        ..GeneratorConfig::default()
    };
    generate(&cfg)
}

/// An Amazon-like dataset (5 top-level categories, heavy-tailed prices,
/// 5-core — paper §V-C). Used by the ablation/quantization experiments.
pub fn amazon_like(scale: f64, seed: u64) -> SyntheticDataset {
    amazon_like_with(scale, seed, 10, Quantization::Uniform)
}

/// Amazon-like dataset with explicit price-level count and quantization
/// scheme (the Fig. 5 sweep and Table IV comparison).
pub fn amazon_like_with(
    scale: f64,
    seed: u64,
    n_price_levels: usize,
    quantization: Quantization,
) -> SyntheticDataset {
    let cfg = GeneratorConfig {
        n_users: scaled(48_424, scale, 150),
        n_items: scaled(33_483, scale, 180),
        n_categories: 5,
        n_price_levels,
        n_interactions: scaled(2 * 438_355, scale, 5_000),
        consistent_user_frac: 0.5,
        // Heavy but not degenerate tail: sigma 1.0 collapses uniform
        // quantization to ~3 effective levels, starving the price nodes.
        price_distribution: PriceDistribution::LogNormal { sigma: 0.75 },
        // Narrower than the yelp/beibei presets: with only 5 broad
        // categories the price point is the dominant per-category signal.
        price_response: PriceResponse::Peak { relative_width: 0.2 },
        imitation_prob: 0.2,
        arrival_span: 0.6,
        categories_per_user: (1, 5),
        category_coherence: 0.5,
        kcore: 5,
        quantization,
        seed,
        ..GeneratorConfig::default()
    };
    generate(&cfg)
}

fn scaled(paper_size: usize, scale: f64, floor: usize) -> usize {
    // pup-lint: allow(as-cast-truncation) — scaled size floored at a small constant
    ((paper_size as f64 * scale) as usize).max(floor)
}

fn weighted_index(weights: &[f64], rng: &mut impl Rng) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must have positive mass");
    let mut target = rng.gen_range(0.0..total);
    let mut last_positive = 0;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if target < w {
            return i;
        }
        target -= w;
        last_positive = i;
    }
    // Floating-point slack: fall back to the last index with mass.
    last_positive
}

fn quantile(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = pct.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn unit_vector(dim: usize, rng: &mut impl Rng) -> Vec<f64> {
    let mut v: Vec<f64> = (0..dim).map(|_| standard_normal(rng)).collect();
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    for x in &mut v {
        *x /= norm;
    }
    v
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            n_users: 80,
            n_items: 100,
            n_categories: 8,
            n_price_levels: 5,
            n_interactions: 3_000,
            kcore: 2,
            seed: 7,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.dataset.interactions, b.dataset.interactions);
        assert_eq!(a.dataset.item_price, b.dataset.item_price);
        let mut other = small_config();
        other.seed = 8;
        let c = generate(&other);
        assert_ne!(a.dataset.interactions, c.dataset.interactions);
    }

    #[test]
    fn generated_dataset_is_valid_and_truth_is_aligned() {
        let s = generate(&small_config());
        s.dataset.validate();
        assert_eq!(s.truth.user_wtp.len(), s.dataset.n_users);
        assert_eq!(s.truth.user_consistent.len(), s.dataset.n_users);
        assert_eq!(s.truth.item_latent.len(), s.dataset.n_items);
        assert_eq!(s.truth.item_popularity.len(), s.dataset.n_items);
        for wtp in &s.truth.user_wtp {
            assert_eq!(wtp.len(), s.dataset.n_categories);
            assert!(wtp.iter().all(|w| w.is_finite() && *w > 0.0));
        }
    }

    #[test]
    fn kcore_is_enforced_on_output() {
        let s = generate(&small_config());
        for l in s.dataset.user_item_lists() {
            assert!(l.len() >= 2);
        }
        for l in s.dataset.item_user_lists() {
            assert!(l.len() >= 2);
        }
    }

    #[test]
    fn purchases_respect_affordability_on_average() {
        // With a strong price gate, purchased items should mostly cost less
        // than the buyer's category WTP.
        let mut cfg = small_config();
        cfg.price_weight = 6.0;
        cfg.kcore = 0;
        let s = generate(&cfg);
        let mut affordable = 0usize;
        let mut total = 0usize;
        for it in &s.dataset.interactions {
            let u = it.user as usize;
            let i = it.item as usize;
            let c = s.dataset.item_category[i];
            total += 1;
            if s.dataset.item_price[i] <= s.truth.user_wtp[u][c] * 1.3 {
                affordable += 1;
            }
        }
        let frac = affordable as f64 / total as f64;
        assert!(frac > 0.8, "only {frac:.2} of purchases were affordable");
    }

    #[test]
    fn users_buy_mostly_within_their_interest_categories() {
        let mut cfg = small_config();
        cfg.kcore = 0;
        let s = generate(&cfg);
        for it in s.dataset.interactions.iter().take(500) {
            let u = it.user as usize;
            let c = s.dataset.item_category[it.item as usize];
            assert!(s.truth.user_affinity[u][c] > 0.0, "user bought outside interest set");
        }
    }

    #[test]
    fn presets_have_expected_shapes() {
        let y = yelp_like(0.0, 42); // floors kick in
        assert_eq!(y.dataset.n_price_levels, 4);
        assert!(y.dataset.n_users > 0, "10-core must leave survivors");
        let b = beibei_like(0.0, 42);
        assert_eq!(b.dataset.n_price_levels, 10);
        let a = amazon_like(0.0, 42);
        assert_eq!(a.dataset.n_categories, 5);
    }

    #[test]
    fn consistent_fraction_is_respected_pre_kcore() {
        let mut cfg = small_config();
        cfg.kcore = 0;
        cfg.consistent_user_frac = 0.25;
        let s = generate(&cfg);
        let n = s.truth.user_consistent.iter().filter(|&&c| c).count();
        assert_eq!(n, (0.25f64 * 80.0).round() as usize);
    }

    #[test]
    fn imitation_increases_co_purchase_clustering() {
        // With collaborative imitation, users should share whole baskets far
        // more often than under the pure utility model.
        let co_pairs = |imitation: f64| {
            let mut cfg = small_config();
            cfg.kcore = 0;
            cfg.imitation_prob = imitation;
            let s = generate(&cfg);
            let lists = s.dataset.user_item_lists();
            let mut strong_pairs = 0usize;
            for a in 0..lists.len() {
                for b in (a + 1)..lists.len() {
                    let common =
                        lists[a].iter().filter(|i| lists[b].binary_search(i).is_ok()).count();
                    if common >= 3 {
                        strong_pairs += 1;
                    }
                }
            }
            strong_pairs
        };
        let without = co_pairs(0.0);
        let with = co_pairs(0.5);
        assert!(
            with > without,
            "imitation should create co-purchase clusters: {with} vs {without}"
        );
    }

    #[test]
    fn imitated_purchases_respect_affordability() {
        let mut cfg = small_config();
        cfg.kcore = 0;
        cfg.imitation_prob = 0.6;
        cfg.price_weight = 6.0;
        let s = generate(&cfg);
        let mut affordable = 0usize;
        for it in &s.dataset.interactions {
            let u = it.user as usize;
            let c = s.dataset.item_category[it.item as usize];
            if s.dataset.item_price[it.item as usize] <= s.truth.user_wtp[u][c] * 1.3 {
                affordable += 1;
            }
        }
        let frac = affordable as f64 / s.dataset.n_interactions() as f64;
        assert!(frac > 0.75, "imitation must not bypass the price gate: {frac:.2}");
    }

    #[test]
    fn items_are_never_bought_before_arrival() {
        let mut cfg = small_config();
        cfg.kcore = 0;
        cfg.arrival_span = 0.8;
        cfg.imitation_prob = 0.3;
        let s = generate(&cfg);
        // First purchase time per item must be non-decreasing in arrival:
        // verify indirectly — late-arriving items (high index) must not be
        // purchased at t = 0..n_categories (only always-available items are).
        // Directly: recompute arrivals is internal, so check the weaker but
        // meaningful invariant that a growing catalog exists: the set of
        // distinct items in the first 10% of events is much smaller than in
        // the last 10%.
        let n = s.dataset.n_interactions();
        let distinct = |range: std::ops::Range<usize>| {
            s.dataset.interactions[range]
                .iter()
                .map(|it| it.item)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let early = distinct(0..n / 10);
        let late = distinct(9 * n / 10..n);
        assert!(
            late > early,
            "catalog should grow over time: early {early} vs late {late} distinct items"
        );
    }

    #[test]
    fn arrival_span_zero_means_full_catalog_from_start() {
        let mut cfg = small_config();
        cfg.kcore = 0;
        cfg.arrival_span = 0.0;
        let a = generate(&cfg);
        cfg.arrival_span = 0.9;
        let b = generate(&cfg);
        // With arrivals, training-period (early) coverage of the catalog is
        // strictly smaller.
        let early_cover = |s: &SyntheticDataset| {
            let n = s.dataset.n_interactions();
            s.dataset.interactions[..n * 6 / 10]
                .iter()
                .map(|it| it.item)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(early_cover(&b) < early_cover(&a));
    }

    #[test]
    fn every_category_has_items() {
        let s = generate(&small_config());
        let mut seen = vec![false; s.dataset.n_categories];
        for &c in &s.dataset.item_category {
            seen[c] = true;
        }
        // After k-core some categories may empty out, but most must survive.
        let alive = seen.iter().filter(|&&x| x).count();
        assert!(alive >= s.dataset.n_categories / 2);
    }
}
