fn main() {}
