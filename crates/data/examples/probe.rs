//! Placeholder example kept so `cargo build --examples` exercises the
//! pup-data public API surface.

fn main() {}
