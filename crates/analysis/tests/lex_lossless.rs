//! Losslessness gate for the lexer: the token stream must tile every
//! workspace source file exactly. If this test fails, span arithmetic in
//! every downstream rule is suspect, so it runs over the *real* tree —
//! including this file — rather than synthetic snippets.

use std::fs;
use std::path::Path;

use pup_analysis::lex::{lex, TokenKind};
use pup_analysis::lint::workspace_rs_files;

#[test]
fn every_workspace_file_lexes_losslessly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_rs_files(&root).expect("workspace is readable");
    assert!(files.len() > 40, "walk found too few files: {}", files.len());
    for file in files {
        let src = fs::read_to_string(&file).expect("source is readable");
        let tokens = lex(&src);
        // Tokens tile the file: contiguous, in order, covering every byte.
        let mut pos = 0usize;
        for tok in &tokens {
            assert_eq!(
                tok.start,
                pos,
                "{}: gap or overlap at byte {pos} ({:?})",
                file.display(),
                tok.kind
            );
            assert!(tok.end > tok.start, "{}: empty token at {pos}", file.display());
            pos = tok.end;
        }
        assert_eq!(pos, src.len(), "{}: tokens do not reach EOF", file.display());
        // Re-concatenating token texts reproduces the file byte for byte.
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        assert_eq!(rebuilt, src, "{}: reassembly differs", file.display());
        // No lexer bail-outs on real code.
        for tok in &tokens {
            assert!(
                tok.kind != TokenKind::Unknown,
                "{}: unknown token {:?} at byte {}",
                file.display(),
                tok.text(&src),
                tok.start
            );
        }
    }
}

#[test]
fn punct_tokens_are_single_bytes() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for file in workspace_rs_files(&root).expect("workspace is readable") {
        let src = fs::read_to_string(&file).expect("source is readable");
        for tok in lex(&src) {
            if tok.kind == TokenKind::Punct {
                assert_eq!(
                    tok.end - tok.start,
                    1,
                    "{}: glued punct {:?} at byte {}",
                    file.display(),
                    tok.text(&src),
                    tok.start
                );
            }
        }
    }
}
