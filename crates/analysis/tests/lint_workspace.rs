//! End-to-end lint driver checks: the real workspace must be clean, and a
//! seeded violation in a scratch tree must be reported.

use std::fs;
use std::path::Path;

use pup_analysis::lint::{lint_workspace, Rule};

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace is readable");
    assert!(report.files_checked > 40, "walk found too few files: {}", report.files_checked);
    assert!(
        report.diagnostics.is_empty(),
        "workspace must lint clean, found:\n{}",
        report.diagnostics.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn seeded_violation_is_reported() {
    let dir = std::env::temp_dir().join(format!("pup-lint-seed-{}", std::process::id()));
    let src = dir.join("crates/bad/src");
    fs::create_dir_all(&src).expect("temp tree");
    fs::write(src.join("lib.rs"), "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n")
        .expect("write seed file");
    let report = lint_workspace(&dir).expect("temp tree is readable");
    fs::remove_dir_all(&dir).ok();
    assert_eq!(report.files_checked, 1);
    assert_eq!(report.diagnostics.len(), 1);
    assert_eq!(report.diagnostics[0].rule, Rule::UnwrapInLib);
    assert_eq!(report.diagnostics[0].line, 2);
}
