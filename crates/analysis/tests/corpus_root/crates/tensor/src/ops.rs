//! Corpus fixture: the tensor-op-module rules (`undocumented-pub-op`,
//! `panic-in-backward`) plus `unguarded-ln` in tensor scope.

/// Documented op: no finding.
pub fn documented_op(x: f64) -> f64 {
    x + 1.0
}

pub fn undocumented_op(x: f64) -> f64 {
    x * 2.0
}

/// An op whose backward closure panics: `panic-in-backward`.
pub fn bad_backward() -> Box<dyn Fn(f64)> {
    Box::new(|g: f64| {
        if g.is_nan() {
            panic!("nan gradient");
        }
    })
}

/// Panicking outside any backward closure is not this rule's business.
pub fn panic_in_forward(x: f64) -> f64 {
    if x.is_nan() {
        panic!("nan input");
    }
    x
}

/// Unguarded log in tensor code: `unguarded-ln`.
pub fn raw_log(p: f64) -> f64 {
    p.ln()
}

/// A floor on the same statement quiets the rule.
pub fn floored_log(p: f64) -> f64 {
    p.max(1e-12).ln()
}
