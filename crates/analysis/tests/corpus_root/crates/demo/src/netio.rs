//! Corpus fixture for `blocking-io-without-timeout`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn fetch_unguarded(mut s: TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf);
    buf
}

fn push_unguarded(mut s: TcpStream, payload: &[u8]) {
    let _ = s.write_all(payload);
}

fn fetch_armed(mut s: TcpStream) -> Vec<u8> {
    let _ = s.set_read_timeout(Some(Duration::from_secs(1)));
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf);
    buf
}

fn pump_with_budget(s: &mut TcpStream, deadline_ns: u64) -> u64 {
    let mut b = [0u8; 8];
    let _ = s.read(&mut b);
    deadline_ns
}

fn fetch_escaped(mut s: TcpStream) -> usize {
    let mut b = [0u8; 8];
    // pup-lint: allow(blocking-io-without-timeout)
    s.read(&mut b).unwrap_or(0)
}
