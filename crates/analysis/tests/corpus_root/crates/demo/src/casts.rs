//! Corpus fixtures for the `as-cast-truncation` rule.

/// Narrowing integer cast: flagged.
pub fn narrow(x: u64) -> u32 {
    x as u32
}

/// Precision-losing float cast: flagged.
pub fn shrink(x: f64) -> f32 {
    x as f32
}

/// Float-to-usize truncation: flagged.
pub fn bucket(x: f64) -> usize {
    (x * 10.0) as usize
}

/// Escaped lossy cast: quiet.
pub fn escaped(x: u64) -> u32 {
    // pup-lint: allow(as-cast-truncation) — ids are dense and small
    x as u32
}

/// Integer-to-usize widening: quiet.
pub fn widen(x: u32) -> usize {
    x as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x: u64 = 5;
        assert_eq!(x as u32, 5);
    }
}
