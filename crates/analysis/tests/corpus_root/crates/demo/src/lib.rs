//! Corpus fixture: one confirmed finding per general-purpose rule, plus
//! the suppression/exclusion cases both engines must agree on.

use std::fs;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

pub fn plain_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn poisoned_lock(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn poison_safe(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn clone_per_iteration(rows: &[Vec<u32>]) -> usize {
    let mut total = 0;
    for row in rows {
        let copy = row.clone();
        total += copy.len();
    }
    total
}

pub fn hoisted_clone(rows: &Vec<u32>) -> usize {
    let copy = rows.clone();
    let mut total = 0;
    for row in &copy {
        total += *row as usize;
    }
    total
}

pub fn exact_float(p: f64) -> bool {
    p == 0.0
}

pub fn tolerant_float(p: f64) -> bool {
    (p - 0.5).abs() < 1e-9
}

pub fn raw_print(x: u32) {
    println!("{x}");
}

pub fn raw_eprint(x: u32) {
    eprintln!("{x}");
}

pub fn torn_write(p: &Path, s: &str) -> std::io::Result<()> {
    fs::write(p, s)
}

pub fn atomic_write(p: &Path, s: &str) -> std::io::Result<()> {
    let tmp = p.with_extension("tmp");
    fs::write(&tmp, s)?;
    fs::rename(&tmp, p)
}

pub fn escaped_unwrap(x: Option<u32>) -> u32 {
    // pup-lint: allow(unwrap-in-lib) — corpus: a live escape suppresses.
    x.unwrap()
}

pub fn needles_in_prose() -> &'static str {
    // .unwrap() in a comment is prose, not code.
    "x.unwrap(); m.lock().unwrap(); println!(); fs::write(p, s)"
}

// pup-hot: dark-root
pub fn untraced_hot(x: u32) -> u32 {
    x + 1
}

// pup-hot: lit-root
pub fn traced_hot(x: u32) -> u32 {
    let _span = pup_obs::span("hot");
    x + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        println!("tests may print");
    }
}
