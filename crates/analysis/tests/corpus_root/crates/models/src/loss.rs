//! Corpus fixture: `unguarded-ln` in model/loss scope, both the log form
//! and the division-by-tape-value form.

/// A probe type standing in for `Var` reads.
pub struct Probe(f64);

impl Probe {
    /// The tape-value read the divisor needles match.
    pub fn scalar(&self) -> f64 {
        self.0
    }
}

/// Unguarded `.ln()` on a probability: flagged.
pub fn nll(p: f64) -> f64 {
    -p.ln()
}

/// Division by a tape-derived value with no floor: flagged.
pub fn normed(x: &Probe, t: &Probe) -> f64 {
    x.scalar() / t.scalar()
}

/// A floored divisor is fine.
pub fn normed_safe(x: &Probe, t: &Probe) -> f64 {
    x.scalar() / t.scalar().max(1e-12)
}

/// Division by a plain count is fine.
pub fn mean(sum: f64, n: usize) -> f64 {
    sum / n as f64
}

/// An escape on the line above suppresses the log rule.
pub fn nll_escaped(p: f64) -> f64 {
    // pup-lint: allow(unguarded-ln) — corpus: argument is pre-floored.
    -p.ln()
}
