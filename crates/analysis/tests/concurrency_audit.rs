//! End-to-end checks for `audit-concurrency` over seeded scratch trees:
//! each fixture plants exactly the hazard a pass exists to catch and
//! asserts the audit reports it (and nothing else). The real workspace is
//! covered too — it must stay clean against the committed ratchet.

use std::fs;
use std::path::{Path, PathBuf};

use pup_analysis::concurrency::{audit_workspace, update_ratchet, Pass, RATCHET_PATH};

/// Builds a scratch workspace from `(relative path, source)` pairs and
/// returns its root. Callers remove it when done.
fn seed(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("pup-audit-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    for (rel, src) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("file paths have parents")).expect("mkdir");
        fs::write(&path, src).expect("write seed file");
    }
    root
}

#[test]
fn rc_in_a_must_be_send_crate_is_flagged() {
    let root = seed(
        "nonsend",
        &[(
            "crates/serve/src/lib.rs",
            "use std::rc::Rc;\n\npub struct Handler {\n    state: Rc<u32>,\n}\n",
        )],
    );
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    let non_send: Vec<_> = report.findings.iter().filter(|f| f.pass == Pass::NonSend).collect();
    assert_eq!(non_send.len(), 2, "use + field site: {:?}", report.findings);
    assert!(non_send.iter().any(|f| f.line == 4), "field site on line 4");
    assert!(report.worklist.is_empty(), "serve sites are violations, not worklist items");
}

#[test]
fn reviewed_escape_suppresses_a_non_send_finding() {
    let root = seed(
        "escape",
        &[(
            "crates/serve/src/lib.rs",
            "pub struct Handler {\n    // pup-audit: allow(non-send): single-threaded repl \
             owns this handler\n    state: std::rc::Rc<u32>,\n}\n",
        )],
    );
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    assert!(
        report.findings.is_empty(),
        "escape with a reason must suppress: {:?}",
        report.findings
    );
}

#[test]
fn lock_ordering_cycle_is_detected() {
    let root = seed(
        "cycle",
        &[(
            "crates/serve/src/locks.rs",
            concat!(
                "use std::sync::Mutex;\n",
                "static A: Mutex<u32> = Mutex::new(0);\n",
                "static B: Mutex<u32> = Mutex::new(0);\n",
                "pub fn forward() {\n",
                "    let ga = A.lock();\n",
                "    let gb = B.lock();\n",
                "    drop((ga, gb));\n",
                "}\n",
                "pub fn backward() {\n",
                "    let gb = B.lock();\n",
                "    let ga = A.lock();\n",
                "    drop((ga, gb));\n",
                "}\n",
            ),
        )],
    );
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    let cycles: Vec<_> = report.findings.iter().filter(|f| f.pass == Pass::LockOrder).collect();
    assert_eq!(cycles.len(), 1, "one deduped cycle: {:?}", report.findings);
    assert!(
        cycles[0].message.contains("locks::A") && cycles[0].message.contains("locks::B"),
        "cycle names both locks: {}",
        cycles[0].message
    );
    assert!(report.lock_edges.len() >= 2, "both orderings recorded: {:?}", report.lock_edges);
}

#[test]
fn consistent_lock_ordering_is_clean() {
    let root = seed(
        "ordered",
        &[(
            "crates/serve/src/locks.rs",
            concat!(
                "use std::sync::Mutex;\n",
                "static A: Mutex<u32> = Mutex::new(0);\n",
                "static B: Mutex<u32> = Mutex::new(0);\n",
                "pub fn one() {\n",
                "    let ga = A.lock();\n",
                "    let gb = B.lock();\n",
                "    drop((ga, gb));\n",
                "}\n",
                "pub fn two() {\n",
                "    let ga = A.lock();\n",
                "    let gb = B.lock();\n",
                "    drop((ga, gb));\n",
                "}\n",
            ),
        )],
    );
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    assert!(report.findings.is_empty(), "same order everywhere: {:?}", report.findings);
}

#[test]
fn relaxed_atomic_bool_handoff_is_flagged() {
    let root = seed(
        "relaxed",
        &[(
            "crates/serve/src/flags.rs",
            concat!(
                "use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};\n",
                "static READY: AtomicBool = AtomicBool::new(false);\n",
                "static HITS: AtomicU64 = AtomicU64::new(0);\n",
                "pub fn publish() {\n",
                "    READY.store(true, Ordering::Relaxed);\n",
                "    HITS.fetch_add(1, Ordering::Relaxed);\n",
                "}\n",
            ),
        )],
    );
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    let relaxed: Vec<_> =
        report.findings.iter().filter(|f| f.pass == Pass::RelaxedHandoff).collect();
    assert_eq!(relaxed.len(), 1, "flag the bool, not the counter: {:?}", report.findings);
    assert_eq!(relaxed[0].line, 5);
}

#[test]
fn tensor_sites_feed_the_worklist_and_the_ratchet() {
    let root = seed(
        "ratchet",
        &[(
            "crates/tensor/src/tape.rs",
            "use std::rc::Rc;\n\npub struct Tape {\n    nodes: Rc<Vec<u32>>,\n}\n",
        )],
    );
    // Tensor sites are worklist items, not findings — but an unset ratchet
    // with a non-empty worklist is itself a finding.
    let report = audit_workspace(&root).expect("seeded tree is readable");
    assert_eq!(report.worklist.len(), 2, "{:?}", report.worklist);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].pass, Pass::Ratchet);

    // Committing the ratchet makes the audit clean…
    update_ratchet(&root, report.worklist.len()).expect("ratchet written");
    let report = audit_workspace(&root).expect("seeded tree is readable");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.ratchet_recorded, Some(2));

    // …and regressing past it is a violation.
    fs::write(
        root.join(RATCHET_PATH),
        "{\"schema\": \"pup-audit-ratchet/1\", \"tensor_non_send_sites\": 1}\n",
    )
    .expect("shrink ratchet");
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].pass, Pass::Ratchet);
    assert!(report.findings[0].message.contains("grew"), "{}", report.findings[0].message);
}

#[test]
fn real_workspace_audit_is_clean_against_the_committed_ratchet() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_workspace(&root).expect("workspace is readable");
    assert!(report.files_checked > 40, "walk found too few files: {}", report.files_checked);
    assert!(
        report.findings.is_empty(),
        "workspace audit must be clean:\n{}",
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert_eq!(
        report.ratchet_recorded,
        Some(report.worklist.len()),
        "ratchet must match the live worklist"
    );
}
