//! Integration tests for the tape-IR exporter and computation-graph
//! auditor: a golden snapshot of PUP's recorded training-loss graph, a
//! seeded disconnected-parameter fixture that must fail the dead-parameter
//! pass, a hand-built shape-mismatch tape, and the end-to-end
//! `audit_workspace` run that backs `cargo run -p pup-analysis -- audit-graph`.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use pup_analysis::graph::{self, check_dead_parameters, check_shapes, AuditedParam, Pass};
use pup_models::trainer::BprModel;
use pup_models::{ParamRegistry, Pup, PupConfig, PupVariant, TrainData};
use pup_tensor::tape::{self, Tape, TapeNode};
use pup_tensor::{ops, Matrix, Var};

/// Same toy dataset the auditor uses: 4 users x 4 items, 2 categories,
/// 2 price levels, every entity on the graph.
const TRAIN: [(usize, usize); 8] = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3), (3, 3), (3, 0)];
const PRICE_LEVEL: [usize; 4] = [0, 1, 0, 1];
const CATEGORY: [usize; 4] = [0, 0, 1, 1];

fn toy_data() -> TrainData<'static> {
    TrainData {
        n_users: 4,
        n_items: 4,
        n_categories: 2,
        n_price_levels: 2,
        item_price_level: &PRICE_LEVEL,
        item_category: &CATEGORY,
        train: &TRAIN,
    }
}

/// Mirrors the auditor's recording protocol: one BPR step (sampling, both
/// score batches, softplus margin loss) under a fixed-seed RNG.
fn record_bpr_step<M: BprModel>(model: &mut M, seed: u64) -> Tape {
    let users = [0usize, 1, 2, 3];
    let pos = [0usize, 1, 2, 3];
    let neg = [2usize, 3, 0, 1];
    let mut rng = StdRng::seed_from_u64(seed);
    tape::start_recording();
    model.begin_step(&mut rng);
    let s_pos = model.score_batch(&users, &pos);
    let s_neg = model.score_batch(&users, &neg);
    let margin = ops::sub(&s_pos, &s_neg);
    let loss = ops::mean(&ops::softplus(&ops::scale(&margin, -1.0)));
    tape::finish_recording(&loss)
}

fn pup_config() -> PupConfig {
    PupConfig {
        global_dim: 4,
        category_dim: 3,
        n_layers: 1,
        dropout: 0.3,
        variant: PupVariant::Full,
        seed: 11,
        ..Default::default()
    }
}

/// Golden snapshot: PUP's recorded training-loss graph on the fixed-seed
/// toy dataset has a stable node count, parameter count, and canonical
/// hash. If a refactor changes the forward pass's structure, this test
/// fails and the literals below must be re-derived (run
/// `cargo run -p pup-analysis -- audit-graph` and inspect).
#[test]
fn pup_tape_golden_snapshot() {
    let data = toy_data();
    let mut model = Pup::new(&data, pup_config());
    let params = model.named_params();
    assert_eq!(params.len(), 2, "PUP registers global.emb + category.emb");

    let tape = record_bpr_step(&mut model, 7);
    assert_eq!(tape.len(), 69, "PUP training-loss graph node count changed");

    // Both parameters appear as requires-grad leaves on the tape.
    for p in &params {
        let node = tape
            .nodes
            .iter()
            .find(|n| n.id == p.var.id())
            .unwrap_or_else(|| panic!("parameter `{}` missing from the tape", p.name));
        assert!(node.is_leaf(), "parameter `{}` must be a leaf node", p.name);
        assert!(node.requires_grad, "parameter `{}` must require grad", p.name);
    }

    // Same seed, same graph: the canonical hash is reproducible.
    let again = record_bpr_step(&mut model, 7);
    assert_eq!(tape.canonical_hash(), again.canonical_hash());

    // Different sampling seed still yields the same *structure* (the toy
    // batch is fixed; only dropout masks differ, and masks are values, not
    // structure).
    let other_seed = record_bpr_step(&mut model, 8);
    assert_eq!(tape.len(), other_seed.len());
}

/// A seeded fixture with a parameter that never joins the forward pass:
/// the dead-parameter pass must name it.
#[test]
fn disconnected_parameter_fails_dead_parameter_pass() {
    let mut rng = StdRng::seed_from_u64(42);
    let used = Var::param(Matrix::from_fn(4, 2, |_, _| rng.gen_range(-0.1..0.1)));
    let orphan = Var::param(Matrix::from_fn(4, 2, |_, _| rng.gen_range(-0.1..0.1)));

    tape::start_recording();
    let loss = ops::sum(&ops::square(&used));
    let tape = tape::finish_recording(&loss);

    let params = [
        AuditedParam { name: "used.emb".into(), id: used.id() },
        AuditedParam { name: "orphan.emb".into(), id: orphan.id() },
    ];
    let diags = check_dead_parameters("fixture", &tape, &params);
    assert_eq!(diags.len(), 1, "exactly the orphan must be flagged: {diags:?}");
    assert_eq!(diags[0].pass, Pass::DeadParameter);
    assert!(
        diags[0].message.contains("orphan.emb"),
        "diagnostic must name the dead parameter: {}",
        diags[0].message
    );
    assert_eq!(diags[0].pass.name(), "dead-parameter");
}

/// A hand-built tape whose recorded matmul shape contradicts its inputs:
/// the shape pass must flag the node.
#[test]
fn shape_mismatch_fails_shape_pass() {
    let tape = Tape {
        nodes: vec![
            TapeNode { id: 1, op: "leaf", inputs: vec![], shape: (2, 3), requires_grad: true },
            TapeNode { id: 2, op: "leaf", inputs: vec![], shape: (3, 4), requires_grad: false },
            TapeNode {
                id: 3,
                op: "matmul",
                inputs: vec![1, 2],
                shape: (9, 9),
                requires_grad: true,
            },
        ],
        root: 3,
    };
    let diags = check_shapes("fixture", &tape);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].pass, Pass::Shape);
    assert!(diags[0].message.contains("matmul"), "{}", diags[0].message);
}

/// End-to-end: the full workspace audit (the same call the
/// `audit-graph` subcommand makes) is clean for all seven models.
#[test]
fn workspace_audit_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = graph::audit_workspace(&root);
    assert!(report.diagnostics.is_empty(), "audit-graph must be clean: {:?}", report.diagnostics);
    assert_eq!(report.models.len(), 7, "all seven models audited");
    for m in &report.models {
        assert!(m.nodes > 0, "{} recorded an empty tape", m.model);
        assert!(m.params > 0, "{} registered no parameters", m.model);
    }
    assert!(report.notes.is_empty(), "ops.rs must be readable from the workspace root");
}
