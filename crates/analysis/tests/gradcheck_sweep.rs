//! Gradient sweep: every public op in `pup_tensor::ops` and the BPR loss of
//! all six models, checked against central finite differences.
//!
//! Acceptance bar: max relative gradient error < 1e-3 per op. The op checks
//! run at the tighter default (tol 1e-4); the model losses compound several
//! ops and a graph propagation, so they use the 1e-3 bar directly.

use std::cell::RefCell;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pup_analysis::gradcheck::{gradcheck, GradcheckConfig};
use pup_models::trainer::BprModel;
use pup_models::{BprMf, DeepFm, Fm, GcMc, Ngcf, Pup, PupConfig, PupVariant, TrainData};
use pup_tensor::{ops, CsrMatrix, Matrix, Var};

fn param(rows: usize, cols: usize, seed: u64) -> Var {
    let mut rng = StdRng::seed_from_u64(seed);
    Var::param(Matrix::from_fn(rows, cols, |_, _| rand::Rng::gen_range(&mut rng, -1.0..1.0)))
}

/// A parameter bounded away from zero (for kinked activations).
fn param_off_kink(rows: usize, cols: usize, seed: u64) -> Var {
    let mut rng = StdRng::seed_from_u64(seed);
    Var::param(Matrix::from_fn(rows, cols, |_, _| {
        let v: f64 = rand::Rng::gen_range(&mut rng, 0.2..1.0);
        if rand::Rng::gen_bool(&mut rng, 0.5) {
            v
        } else {
            -v
        }
    }))
}

fn check(f: impl Fn(&[Var]) -> Var, inputs: &[Var]) {
    let report = gradcheck(f, inputs, GradcheckConfig::default())
        .unwrap_or_else(|e| panic!("gradcheck failed: {e}"));
    assert!(report.max_rel_err < 1e-3, "rel err too large: {}", report.max_rel_err);
}

#[test]
fn sweep_add_sub_mul_scale() {
    let b = Var::constant(Matrix::from_fn(2, 3, |r, c| 0.4 * r as f64 - 0.1 * c as f64));
    check(|i| ops::sum(&ops::square(&ops::add(&i[0], &b))), &[param(2, 3, 1)]);
    check(|i| ops::sum(&ops::square(&ops::sub(&i[0], &b))), &[param(2, 3, 2)]);
    check(|i| ops::sum(&ops::mul(&i[0], &i[1])), &[param(2, 3, 3), param(2, 3, 4)]);
    // Aliased operands exercise the accumulate-twice path.
    check(|i| ops::sum(&ops::mul(&i[0], &i[0])), &[param(2, 3, 5)]);
    check(|i| ops::sum(&ops::scale(&i[0], -2.5)), &[param(2, 3, 6)]);
}

#[test]
fn sweep_matmul_dense_and_sparse() {
    check(
        |i| ops::sum(&ops::square(&ops::matmul(&i[0], &i[1]))),
        &[param(2, 3, 7), param(3, 2, 8)],
    );
    let a = Arc::new(CsrMatrix::from_triplets(
        3,
        4,
        &[(0, 0, 0.5), (0, 2, -0.5), (1, 1, 1.0), (2, 3, 0.25), (2, 0, 0.75)],
    ));
    check(move |i| ops::sum(&ops::square(&ops::spmm(&a, &i[0]))), &[param(4, 2, 9)]);
}

#[test]
fn sweep_activations() {
    check(|i| ops::sum(&ops::tanh(&i[0])), &[param(2, 3, 10)]);
    check(|i| ops::sum(&ops::sigmoid(&i[0])), &[param(2, 3, 11)]);
    check(|i| ops::sum(&ops::softplus(&i[0])), &[param(2, 3, 12)]);
    check(|i| ops::sum(&ops::relu(&i[0])), &[param_off_kink(2, 3, 13)]);
    check(|i| ops::sum(&ops::leaky_relu(&i[0], 0.2)), &[param_off_kink(2, 3, 14)]);
    check(|i| ops::sum(&ops::square(&i[0])), &[param(2, 3, 15)]);
}

#[test]
fn sweep_gather_and_dots() {
    check(|i| ops::sum(&ops::square(&ops::gather_rows(&i[0], &[0, 2, 2, 4]))), &[param(5, 3, 16)]);
    check(|i| ops::sum(&ops::rowwise_dot(&i[0], &i[1])), &[param(3, 4, 17), param(3, 4, 18)]);
    check(|i| ops::sum(&ops::rowwise_dot(&i[0], &i[0])), &[param(3, 4, 19)]);
    check(|i| ops::sum(&ops::square(&ops::row_sums(&i[0]))), &[param(3, 4, 20)]);
}

#[test]
fn sweep_reductions() {
    check(|i| ops::sum(&ops::square(&i[0])), &[param(3, 3, 21)]);
    check(|i| ops::mean(&ops::square(&i[0])), &[param(3, 3, 22)]);
    check(|i| ops::l2_penalty(&i[0]), &[param(3, 3, 23)]);
}

#[test]
fn sweep_shape_ops() {
    check(
        |i| ops::sum(&ops::square(&ops::concat_cols(&i[0], &i[1]))),
        &[param(3, 2, 24), param(3, 3, 25)],
    );
    check(
        |i| ops::sum(&ops::square(&ops::concat_rows(&i[0], &i[1]))),
        &[param(2, 3, 26), param(3, 3, 27)],
    );
    check(|i| ops::sum(&ops::square(&ops::slice_rows(&i[0], 1, 4))), &[param(5, 3, 28)]);
    check(|i| ops::sum(&ops::square(&ops::slice_cols(&i[0], 1, 3))), &[param(3, 4, 29)]);
    check(
        |i| ops::sum(&ops::square(&ops::add_row_broadcast(&i[0], &i[1]))),
        &[param(4, 3, 30), param(1, 3, 31)],
    );
}

#[test]
fn sweep_dropout() {
    // Eval mode (p = 0): identity, gradient passes straight through.
    check(
        |i| {
            let mut rng = StdRng::seed_from_u64(0);
            ops::sum(&ops::square(&ops::dropout(&i[0], 0.0, &mut rng)))
        },
        &[param(3, 4, 32)],
    );
    // Active dropout with a re-seeded RNG: the mask is identical on every
    // evaluation, so the sampled subnetwork is deterministic and checkable.
    check(
        |i| {
            let mut rng = StdRng::seed_from_u64(99);
            ops::sum(&ops::square(&ops::dropout(&i[0], 0.4, &mut rng)))
        },
        &[param(3, 4, 33)],
    );
}

// --- Model losses ------------------------------------------------------

/// 4 users x 4 items, 2 categories, 2 price levels, with enough pairs that
/// every entity participates in the graph.
const TRAIN: [(usize, usize); 8] = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3), (3, 3), (3, 0)];
const PRICE_LEVEL: [usize; 4] = [0, 1, 0, 1];
const CATEGORY: [usize; 4] = [0, 0, 1, 1];

fn train_data() -> TrainData<'static> {
    TrainData {
        n_users: 4,
        n_items: 4,
        n_categories: 2,
        n_price_levels: 2,
        item_price_level: &PRICE_LEVEL,
        item_category: &CATEGORY,
        train: &TRAIN,
    }
}

/// Checks the full BPR loss of a model against finite differences. The
/// closure re-seeds the step RNG so repeated evaluations are identical.
fn check_model_loss<M: BprModel>(model: M) {
    let params = model.params();
    let model = RefCell::new(model);
    let users = [0usize, 1, 2, 3];
    let pos = [0usize, 1, 2, 3];
    let neg = [2usize, 3, 0, 1];
    let loss = |_: &[Var]| {
        let mut m = model.borrow_mut();
        let mut rng = StdRng::seed_from_u64(7);
        m.begin_step(&mut rng);
        let s_pos = m.score_batch(&users, &pos);
        let s_neg = m.score_batch(&users, &neg);
        let margin = ops::sub(&s_pos, &s_neg);
        ops::mean(&ops::softplus(&ops::scale(&margin, -1.0)))
    };
    let report = gradcheck(loss, &params, GradcheckConfig { eps: 1e-5, tol: 1e-3 })
        .unwrap_or_else(|e| panic!("model loss gradcheck failed: {e}"));
    assert!(report.entries_checked > 0, "model exposed no parameters");
    assert!(report.max_rel_err < 1e-3, "rel err too large: {}", report.max_rel_err);
}

#[test]
fn model_loss_pup() {
    let cfg = PupConfig {
        global_dim: 4,
        category_dim: 3,
        n_layers: 1,
        dropout: 0.0,
        variant: PupVariant::Full,
        seed: 11,
        ..Default::default()
    };
    check_model_loss(Pup::new(&train_data(), cfg));
}

#[test]
fn model_loss_bprmf() {
    check_model_loss(BprMf::new(&train_data(), 4, 12));
}

#[test]
fn model_loss_fm() {
    check_model_loss(Fm::new(&train_data(), 4, 13));
}

#[test]
fn model_loss_ngcf() {
    check_model_loss(Ngcf::new(&train_data(), 4, 2, 0.0, 14));
}

#[test]
fn model_loss_gcmc() {
    check_model_loss(GcMc::new(&train_data(), 4, 0.0, 15));
}

#[test]
fn model_loss_deepfm() {
    check_model_loss(DeepFm::new(&train_data(), 4, 6, 16));
}

/// Registry honesty: `SWEPT_OPS` is a hand-written list, so nothing stops
/// it from silently drifting from reality. This test builds every public
/// op constructor under tape recording and asserts the set of recorded op
/// names equals the registry exactly — in both directions. A new op that
/// records an unlisted name fails here (add it to the sweep *and* the
/// registry); a registry entry no op produces anymore fails here too.
#[test]
fn swept_ops_registry_matches_recorded_reality() {
    use std::collections::BTreeSet;

    use pup_analysis::gradcheck::SWEPT_OPS;
    use pup_tensor::tape;

    let mut rng = StdRng::seed_from_u64(99);
    let sp = Arc::new(CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 2, 0.5), (2, 1, -1.0)]));

    tape::start_recording();
    let a = param(3, 3, 90);
    let b = param(3, 3, 91);
    let bias = param(1, 3, 92);
    let mut total = ops::sum(&ops::add(&a, &b));
    let mut absorb = |v: Var| {
        total = ops::add(&total, &ops::sum(&v));
    };
    absorb(ops::sub(&a, &b));
    absorb(ops::mul(&a, &b));
    absorb(ops::scale(&a, -0.5));
    absorb(ops::matmul(&a, &b));
    absorb(ops::spmm(&sp, &a));
    absorb(ops::tanh(&a));
    absorb(ops::sigmoid(&a));
    absorb(ops::relu(&a)); // records `leaky_relu`
    absorb(ops::leaky_relu(&a, 0.1));
    absorb(ops::square(&a));
    absorb(ops::softplus(&a));
    absorb(ops::gather_rows(&a, &[0, 2]));
    absorb(ops::rowwise_dot(&a, &b));
    absorb(ops::row_sums(&a));
    absorb(ops::mean(&a)); // records `scale` + `sum`
    absorb(ops::concat_cols(&a, &b));
    absorb(ops::concat_rows(&a, &b));
    absorb(ops::slice_rows(&a, 0, 2));
    absorb(ops::slice_cols(&a, 1, 3));
    absorb(ops::add_row_broadcast(&a, &bias));
    absorb(ops::dropout(&a, 0.3, &mut rng));
    absorb(ops::l2_penalty(&a)); // records `square` + `sum`
    let tape = tape::finish_recording(&total);

    let recorded: BTreeSet<&str> =
        tape.nodes.iter().filter(|n| !n.is_leaf()).map(|n| n.op).collect();
    let registry: BTreeSet<&str> = SWEPT_OPS.iter().copied().collect();
    let missing: Vec<&&str> = recorded.difference(&registry).collect();
    let phantom: Vec<&&str> = registry.difference(&recorded).collect();
    assert!(missing.is_empty(), "recorded ops absent from SWEPT_OPS: {missing:?}");
    assert!(phantom.is_empty(), "SWEPT_OPS entries no op records: {phantom:?}");
}
