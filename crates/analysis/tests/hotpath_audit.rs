//! End-to-end checks for `audit-hotpath` over seeded scratch trees: each
//! fixture plants exactly the violation a pass exists to catch and asserts
//! the certifier reports it through the interprocedural machinery — the
//! seeded panic or allocation is never in the hot root itself, so a report
//! proves the call graph carried the fact caller-ward. The real workspace
//! is covered too: it must certify clean against the committed ratchet.

use std::fs;
use std::path::{Path, PathBuf};

use pup_analysis::hotpath::{audit_workspace, update_ratchet, Pass};

/// Builds a scratch workspace from `(relative path, source)` pairs and
/// returns its root. Callers remove it when done.
fn seed(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("pup-hotpath-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    for (rel, src) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("file paths have parents")).expect("mkdir");
        fs::write(&path, src).expect("write seed file");
    }
    root
}

#[test]
fn panic_two_helpers_deep_reaches_the_root() {
    let root = seed(
        "leak",
        &[(
            "crates/demo/src/lib.rs",
            concat!(
                "// pup-hot: fixture-root\n",
                "pub fn handle(x: Option<u32>) -> u32 {\n",
                "    helper_one(x)\n",
                "}\n",
                "fn helper_one(x: Option<u32>) -> u32 {\n",
                "    helper_two(x)\n",
                "}\n",
                "fn helper_two(x: Option<u32>) -> u32 {\n",
                "    x.unwrap()\n",
                "}\n",
            ),
        )],
    );
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    let panics: Vec<_> = report.findings.iter().filter(|f| f.pass == Pass::PanicReach).collect();
    assert_eq!(panics.len(), 1, "one leaked panic site: {:?}", report.findings);
    assert_eq!(panics[0].line, 9, "the finding points at the unwrap, not the root");
    assert!(
        panics[0].message.contains("lib::handle -> lib::helper_one -> lib::helper_two"),
        "the worklist names the full call chain: {}",
        panics[0].message
    );
}

#[test]
fn panic_behind_a_trait_method_call_is_reached() {
    let root = seed(
        "trait",
        &[(
            "crates/demo/src/lib.rs",
            concat!(
                "pub trait Scorer {\n",
                "    fn score_one(&self, item: usize) -> f64;\n",
                "}\n",
                "pub struct Risky {\n",
                "    table: Vec<f64>,\n",
                "}\n",
                "impl Scorer for Risky {\n",
                "    fn score_one(&self, item: usize) -> f64 {\n",
                "        self.table[item]\n",
                "    }\n",
                "}\n",
                "// pup-hot: fixture-root\n",
                "pub fn handle(s: &Risky) -> f64 {\n",
                "    s.score_one(0)\n",
                "}\n",
            ),
        )],
    );
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    let panics: Vec<_> = report.findings.iter().filter(|f| f.pass == Pass::PanicReach).collect();
    assert_eq!(panics.len(), 1, "indexing in the impl leaks: {:?}", report.findings);
    assert_eq!(panics[0].line, 9, "the site is inside the trait impl");
    assert!(
        panics[0].message.contains("Risky::score_one"),
        "the chain crosses the method-call edge: {}",
        panics[0].message
    );
}

#[test]
fn allocation_in_a_hot_loop_hidden_by_a_helper_lands_in_the_budget() {
    let root = seed(
        "alloc",
        &[(
            "crates/demo/src/lib.rs",
            concat!(
                "// pup-hot: fixture-root\n",
                "pub fn handle(items: &[u32], n: usize) -> usize {\n",
                "    let mut total = 0;\n",
                "    for _ in 0..n {\n",
                "        total += scratch(items).len();\n",
                "    }\n",
                "    total\n",
                "}\n",
                "fn scratch(items: &[u32]) -> Vec<u32> {\n",
                "    items.to_vec()\n",
                "}\n",
            ),
        )],
    );
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    // The allocation never appears in the root's own body — only the call
    // graph connects the loop in `handle` to the `.to_vec()` in `scratch`.
    let fixture_root =
        report.roots.iter().find(|r| r.label == "fixture-root").expect("root is discovered");
    assert_eq!(fixture_root.reachable, 2, "handle + scratch");
    assert_eq!(fixture_root.allocs, 1, "the helper's to_vec counts: {:?}", report.sites);
    assert!(
        report.sites.iter().any(|s| s.root == "fixture-root" && s.line == 10),
        "the budget names the helper's alloc site: {:?}",
        report.sites
    );
}

#[test]
fn ratchet_grow_fails_and_shrink_prompts() {
    let clean = concat!(
        "// pup-hot: fixture-root\n",
        "pub fn handle(items: &[u32]) -> Vec<u32> {\n",
        "    items.to_vec()\n",
        "}\n",
    );
    let grown = concat!(
        "// pup-hot: fixture-root\n",
        "pub fn handle(items: &[u32]) -> Vec<u32> {\n",
        "    let twice = items.to_vec();\n",
        "    twice.clone()\n",
        "}\n",
    );
    let root = seed("ratchet", &[("crates/demo/src/lib.rs", clean)]);

    // No ratchet + nonzero budget: the audit prompts for --update-ratchet.
    let report = audit_workspace(&root).expect("seeded tree is readable");
    assert!(
        report.findings.iter().any(|f| f.pass == Pass::Ratchet),
        "missing ratchet must prompt: {:?}",
        report.findings
    );

    // Committing the ratchet makes the same tree certify clean.
    update_ratchet(&root, &report.roots).expect("ratchet writes");
    let report = audit_workspace(&root).expect("seeded tree is readable");
    assert!(report.findings.is_empty(), "committed ratchet certifies: {:?}", report.findings);

    // Growing the budget fails the gate.
    fs::write(root.join("crates/demo/src/lib.rs"), grown).expect("grow rewrite");
    let report = audit_workspace(&root).expect("seeded tree is readable");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.pass == Pass::Ratchet && f.message.contains("alloc budget grew")),
        "grow must fail: {:?}",
        report.findings
    );

    // Shrinking back below the recorded budget prompts to lock it in.
    update_ratchet(&root, &report.roots).expect("ratchet writes");
    fs::write(root.join("crates/demo/src/lib.rs"), clean).expect("shrink rewrite");
    let report = audit_workspace(&root).expect("seeded tree is readable");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.pass == Pass::Ratchet && f.message.contains("alloc budget shrank")),
        "shrink must prompt: {:?}",
        report.findings
    );
    fs::remove_dir_all(&root).ok();
}

#[test]
fn escape_without_a_reason_is_rejected() {
    let root = seed(
        "noreason",
        &[(
            "crates/demo/src/lib.rs",
            concat!(
                "// pup-hot: fixture-root\n",
                "pub fn handle(x: Option<u32>) -> u32 {\n",
                "    // pup-audit: allow(hotpath-panic)\n",
                "    x.unwrap()\n",
                "}\n",
            ),
        )],
    );
    let report = audit_workspace(&root).expect("seeded tree is readable");
    fs::remove_dir_all(&root).ok();
    assert!(
        report.findings.iter().any(|f| f.pass == Pass::Escape && f.message.contains("no reason")),
        "reasonless escape is a violation: {:?}",
        report.findings
    );
    assert!(
        report.findings.iter().any(|f| f.pass == Pass::PanicReach),
        "a reasonless escape earns no suppression — the panic site stays reported: {:?}",
        report.findings
    );
}

#[test]
fn real_workspace_certifies_clean_against_the_committed_ratchet() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = audit_workspace(&repo).expect("workspace is readable");
    assert_eq!(
        report.roots.len(),
        5,
        "serve-request, train-epoch, eval-rank, swap-request, net-conn: {:?}",
        report.roots
    );
    assert!(
        report.findings.is_empty(),
        "the workspace must certify clean; new panic sites on the hot path need a reviewed \
         escape, new allocs need the ratchet story: {:?}",
        report.findings
    );
}
