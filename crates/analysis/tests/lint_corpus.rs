//! Corpus regression gate for the token-based engine: linting the frozen
//! tree under `tests/corpus_root` must reproduce `expected_findings.txt`
//! exactly — same files, same lines, same rules, nothing extra. The corpus
//! was captured from the regex engine this one replaced, so this test is
//! the proof that the migration changed the implementation, not the
//! verdicts.

use std::path::Path;

use pup_analysis::lint::lint_workspace;

#[test]
fn corpus_findings_match_the_golden_file() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus_root");
    let report = lint_workspace(&corpus).expect("corpus is readable");
    assert_eq!(report.files_checked, 5, "corpus shape changed");

    let mut got: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| {
            let rel = d.file.strip_prefix(&corpus).unwrap_or(&d.file);
            format!("{}:{}:{}", rel.display(), d.line, d.rule.name())
        })
        .collect();
    got.sort();

    let golden = corpus.join("expected_findings.txt");
    let mut want: Vec<String> = std::fs::read_to_string(&golden)
        .expect("golden file is readable")
        .lines()
        .map(str::to_string)
        .filter(|l| !l.is_empty())
        .collect();
    want.sort();

    assert_eq!(
        got, want,
        "corpus findings diverged from the golden file; if the change is \
         intentional, update tests/corpus_root/expected_findings.txt"
    );
}
