//! CLI for the PUP correctness tooling.
//!
//! ```text
//! cargo run -p pup-analysis -- lint [ROOT]
//! ```
//!
//! `lint` walks `ROOT/crates/*/src` (default: the current directory),
//! prints one `file:line: [rule] message` diagnostic per violation, and
//! exits 1 when anything is found, 0 on a clean tree, 2 on usage or I/O
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

use pup_analysis::lint;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
            run_lint(&root)
        }
        _ => {
            eprintln!("usage: pup-analysis lint [ROOT]");
            eprintln!();
            eprintln!("Walks ROOT/crates/*/src and enforces the workspace lint rules:");
            for rule in [
                lint::Rule::UnwrapInLib,
                lint::Rule::PanicInBackward,
                lint::Rule::UndocumentedPubOp,
                lint::Rule::CloneInLoop,
            ] {
                eprintln!("  - {}", rule.name());
            }
            eprintln!();
            eprintln!("Suppress a site with `// pup-lint: allow(<rule>)` on or above it.");
            ExitCode::from(2)
        }
    }
}

fn run_lint(root: &std::path::Path) -> ExitCode {
    match lint::lint_workspace(root) {
        Ok(report) => {
            for diag in &report.diagnostics {
                println!("{diag}");
            }
            if report.diagnostics.is_empty() {
                println!("pup-lint: clean ({} files checked)", report.files_checked);
                ExitCode::SUCCESS
            } else {
                println!(
                    "pup-lint: {} violation(s) in {} files checked",
                    report.diagnostics.len(),
                    report.files_checked
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("pup-analysis: cannot lint {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
