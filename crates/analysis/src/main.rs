//! CLI for the PUP correctness tooling.
//!
//! ```text
//! cargo run -p pup-analysis -- lint [--strict] [--fix [--force]] [--format json] [ROOT]
//! cargo run -p pup-analysis -- audit-concurrency [--format json] [--update-ratchet] [ROOT]
//! cargo run -p pup-analysis -- audit-hotpath [--format json] [--update-ratchet] [ROOT]
//! cargo run -p pup-analysis -- audit-graph [ROOT]
//! ```
//!
//! `lint` walks `ROOT/crates/*/src` (default: the current directory),
//! prints one `file:line: [rule] message` diagnostic per violation, and
//! exits 1 when anything is found, 0 on a clean tree, 2 on usage or I/O
//! errors. With `--strict`, stale `// pup-lint: allow(...)` escapes (ones
//! that no longer suppress any finding) are violations too. With `--fix`,
//! stale escapes are deleted in place first — `// pup-lint: allow(...)`
//! names that suppress nothing plus `// pup-audit: allow(...)` escapes
//! the concurrency and hot-path audits report stale; that rewrites
//! files, so a dirty git tree is refused unless `--force` is given.
//!
//! `audit-concurrency` runs the Send/Sync shareability manifest, the
//! lock-discipline pass and the atomic-ordering lint (see
//! `pup_analysis::concurrency`), compares the tensor migration worklist
//! against the committed ratchet in `results/concurrency_ratchet.json`,
//! and exits with the same 0/1/2 protocol. `--update-ratchet` rewrites the
//! ratchet to the current worklist size.
//!
//! `audit-hotpath` builds the workspace call graph, certifies every
//! `// pup-hot: <label>` root panic-free (modulo reasoned
//! `// pup-audit: allow(hotpath-panic)` escapes), and checks per-root
//! allocation/lock budgets against `results/hotpath_ratchet.json` with
//! the same grow-fails / shrink-prompts semantics.
//!
//! `--format json` (for `lint`, `audit-concurrency` and `audit-hotpath`)
//! emits a single machine-readable JSON object on stdout instead of text;
//! CI uploads it as an artifact.
//!
//! `audit-graph` instantiates all seven model types on a tiny synthetic
//! dataset, records their training-loss graphs as tape IR, and runs the
//! static passes in `pup_analysis::graph` (dead-parameter, dead-subgraph,
//! shape, op-coverage, determinism). Diagnostics are file-less
//! (`model: [pass] message`); the exit protocol is the same as `lint`.

use std::path::PathBuf;
use std::process::ExitCode;

use pup_analysis::concurrency::{self, json_escape};
use pup_analysis::{fix, graph, hotpath, lint};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let mut strict = false;
            let mut apply_fix = false;
            let mut force = false;
            let mut json = false;
            let mut root = PathBuf::from(".");
            let mut args = args.peekable();
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--strict" => strict = true,
                    "--fix" => apply_fix = true,
                    "--force" => force = true,
                    "--format" => match args.next().as_deref() {
                        Some("json") => json = true,
                        Some("text") => json = false,
                        other => {
                            eprintln!("pup-analysis: unknown format {other:?}");
                            return ExitCode::from(2);
                        }
                    },
                    _ => root = PathBuf::from(arg),
                }
            }
            if apply_fix {
                if let Some(code) = run_fix(&root, force) {
                    return code;
                }
            }
            run_lint(&root, strict, json)
        }
        Some("audit-concurrency") => {
            let mut json = false;
            let mut update = false;
            let mut root = PathBuf::from(".");
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--update-ratchet" => update = true,
                    "--format" => match args.next().as_deref() {
                        Some("json") => json = true,
                        Some("text") => json = false,
                        other => {
                            eprintln!("pup-analysis: unknown format {other:?}");
                            return ExitCode::from(2);
                        }
                    },
                    _ => root = PathBuf::from(arg),
                }
            }
            run_audit_concurrency(&root, json, update)
        }
        Some("audit-hotpath") => {
            let mut json = false;
            let mut update = false;
            let mut root = PathBuf::from(".");
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--update-ratchet" => update = true,
                    "--format" => match args.next().as_deref() {
                        Some("json") => json = true,
                        Some("text") => json = false,
                        other => {
                            eprintln!("pup-analysis: unknown format {other:?}");
                            return ExitCode::from(2);
                        }
                    },
                    _ => root = PathBuf::from(arg),
                }
            }
            run_audit_hotpath(&root, json, update)
        }
        Some("audit-graph") => {
            let root = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
            run_audit_graph(&root)
        }
        _ => {
            eprintln!(
                "usage: pup-analysis lint [--strict] [--fix [--force]] [--format json] [ROOT]"
            );
            eprintln!(
                "       pup-analysis audit-concurrency [--format json] [--update-ratchet] [ROOT]"
            );
            eprintln!(
                "       pup-analysis audit-hotpath [--format json] [--update-ratchet] [ROOT]"
            );
            eprintln!("       pup-analysis audit-graph [ROOT]");
            eprintln!();
            eprintln!("lint walks ROOT/crates/*/src and enforces the workspace lint rules:");
            for rule in lint::Rule::ALLOWABLE {
                eprintln!("  - {}", rule.name());
            }
            eprintln!();
            eprintln!("Suppress a site with `// pup-lint: allow(<rule>)` on or above it;");
            eprintln!("--strict additionally reports escapes that suppress nothing, and");
            eprintln!("--fix deletes those stale escapes in place (pup-lint and stale");
            eprintln!("pup-audit escapes from both audits).");
            eprintln!();
            eprintln!("audit-concurrency runs the Send/Sync manifest, lock-discipline and");
            eprintln!("atomic-ordering passes, and checks the tensor migration worklist");
            eprintln!("against results/concurrency_ratchet.json.");
            eprintln!();
            eprintln!("audit-hotpath builds the workspace call graph and certifies every");
            eprintln!("`// pup-hot: <label>` root panic-free (escapes:");
            eprintln!("`// pup-audit: allow(hotpath-panic): <why>`), ratcheting per-root");
            eprintln!("allocation/lock budgets in results/hotpath_ratchet.json.");
            eprintln!();
            eprintln!("audit-graph records every model's training-loss graph as tape IR");
            eprintln!("and runs the static passes: dead-parameter, dead-subgraph, shape,");
            eprintln!("op-coverage, determinism.");
            ExitCode::from(2)
        }
    }
}

/// Applies `--fix`; returns an exit code only on refusal or error.
fn run_fix(root: &std::path::Path, force: bool) -> Option<ExitCode> {
    if !force && fix::working_tree_dirty(root) == Some(true) {
        eprintln!(
            "pup-analysis: lint --fix rewrites files but the git tree has uncommitted \
             changes; commit/stash them or pass --force"
        );
        return Some(ExitCode::from(2));
    }
    match fix::fix_workspace(root) {
        Ok(outcome) => {
            for file in &outcome.files_changed {
                eprintln!("pup-lint: fixed {}", file.display());
            }
            eprintln!(
                "pup-lint: removed {} stale escape(s) in {} file(s)",
                outcome.escapes_removed,
                outcome.files_changed.len()
            );
            None
        }
        Err(e) => {
            eprintln!("pup-analysis: cannot fix {}: {e}", root.display());
            Some(ExitCode::from(2))
        }
    }
}

fn run_lint(root: &std::path::Path, strict: bool, json: bool) -> ExitCode {
    match lint::lint_workspace_with(root, strict) {
        Ok(report) => {
            if json {
                print_lint_json(&report);
            } else {
                for diag in &report.diagnostics {
                    println!("{diag}");
                }
                if report.diagnostics.is_empty() {
                    println!("pup-lint: clean ({} files checked)", report.files_checked);
                } else {
                    println!(
                        "pup-lint: {} violation(s) in {} files checked",
                        report.diagnostics.len(),
                        report.files_checked
                    );
                }
            }
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("pup-analysis: cannot lint {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn print_lint_json(report: &lint::LintReport) {
    let mut out = String::from("{\n  \"schema\": \"pup-lint/1\",\n");
    out.push_str(&format!("  \"files_checked\": {},\n", report.files_checked));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let comma = if i + 1 < report.diagnostics.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"span\": [{}, {}], \
             \"message\": \"{}\"}}{comma}\n",
            json_escape(&d.file.to_string_lossy()),
            d.line,
            d.rule.name(),
            d.span.0,
            d.span.1,
            json_escape(&d.message),
        ));
    }
    out.push_str("  ]\n}");
    println!("{out}");
}

fn run_audit_concurrency(root: &std::path::Path, json: bool, update: bool) -> ExitCode {
    let report = match concurrency::audit_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pup-analysis: cannot audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if update {
        if let Err(e) = concurrency::update_ratchet(root, report.worklist.len()) {
            eprintln!("pup-analysis: cannot update ratchet: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "audit-concurrency: ratchet set to {} tensor non-Send site(s)",
            report.worklist.len()
        );
        // Re-run so the ratchet finding (if any) reflects the new value.
        return run_audit_concurrency(root, json, false);
    }
    if json {
        print_audit_json(&report);
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "audit-concurrency: {} lock(s), {} ordering edge(s), {} tensor worklist \
             site(s) (ratchet: {})",
            report.locks.len(),
            report.lock_edges.len(),
            report.worklist.len(),
            report.ratchet_recorded.map_or_else(|| "unset".to_string(), |r| r.to_string()),
        );
        for item in &report.worklist {
            println!(
                "audit-concurrency: worklist {}:{}: {}",
                item.file.display(),
                item.line,
                item.construct
            );
        }
        if report.findings.is_empty() {
            println!("audit-concurrency: clean ({} files checked)", report.files_checked);
        } else {
            println!(
                "audit-concurrency: {} finding(s) in {} files checked",
                report.findings.len(),
                report.files_checked
            );
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_audit_json(report: &concurrency::AuditReport) {
    let mut out = String::from("{\n  \"schema\": \"pup-audit/1\",\n");
    out.push_str(&format!("  \"files_checked\": {},\n", report.files_checked));
    out.push_str(&format!(
        "  \"ratchet_recorded\": {},\n",
        report.ratchet_recorded.map_or_else(|| "null".to_string(), |r| r.to_string())
    ));
    out.push_str("  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let comma = if i + 1 < report.findings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"pass\": \"{}\", \"message\": \"{}\"}}{comma}\n",
            json_escape(&f.file.to_string_lossy()),
            f.line,
            f.pass.name(),
            json_escape(&f.message),
        ));
    }
    out.push_str("  ],\n  \"worklist\": [\n");
    for (i, w) in report.worklist.iter().enumerate() {
        let comma = if i + 1 < report.worklist.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"construct\": \"{}\"}}{comma}\n",
            json_escape(&w.file.to_string_lossy()),
            w.line,
            json_escape(&w.construct),
        ));
    }
    out.push_str("  ],\n  \"lock_edges\": [\n");
    for (i, (a, b, file, line)) in report.lock_edges.iter().enumerate() {
        let comma = if i + 1 < report.lock_edges.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"from\": \"{}\", \"to\": \"{}\", \"file\": \"{}\", \"line\": {line}}}{comma}\n",
            json_escape(a),
            json_escape(b),
            json_escape(&file.to_string_lossy()),
        ));
    }
    out.push_str("  ]\n}");
    println!("{out}");
}

fn run_audit_hotpath(root: &std::path::Path, json: bool, update: bool) -> ExitCode {
    let report = match hotpath::audit_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pup-analysis: cannot audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if update {
        if let Err(e) = hotpath::update_ratchet(root, &report.roots) {
            eprintln!("pup-analysis: cannot update ratchet: {e}");
            return ExitCode::from(2);
        }
        eprintln!("audit-hotpath: ratchet set for {} hot root(s)", report.roots.len());
        // Re-run so ratchet findings (if any) reflect the new budgets.
        return run_audit_hotpath(root, json, false);
    }
    if json {
        print_hotpath_json(&report);
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        for r in &report.roots {
            let recorded = report
                .ratchet
                .as_ref()
                .and_then(|m| m.get(&r.label))
                .map_or_else(|| "unset".to_string(), |&(a, l)| format!("{a}/{l}"));
            println!(
                "audit-hotpath: root `{}` ({}): {} fn(s) reachable, {} alloc site(s), \
                 {} lock site(s) (ratchet: {recorded})",
                r.label, r.qual, r.reachable, r.allocs, r.locks
            );
        }
        for s in &report.sites {
            println!(
                "audit-hotpath: budget {}:{}: {} via `{}`",
                s.file.display(),
                s.line,
                s.construct,
                s.root
            );
        }
        if report.findings.is_empty() {
            println!(
                "audit-hotpath: certified ({} fn(s) in {} files)",
                report.fn_count, report.files_checked
            );
        } else {
            println!(
                "audit-hotpath: {} finding(s) in {} files checked",
                report.findings.len(),
                report.files_checked
            );
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_hotpath_json(report: &hotpath::AuditReport) {
    let mut out = String::from("{\n  \"schema\": \"pup-hotpath/1\",\n");
    out.push_str(&format!("  \"files_checked\": {},\n", report.files_checked));
    out.push_str(&format!("  \"fn_count\": {},\n", report.fn_count));
    out.push_str("  \"roots\": [\n");
    for (i, r) in report.roots.iter().enumerate() {
        let comma = if i + 1 < report.roots.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"fn\": \"{}\", \"reachable\": {}, \"allocs\": {}, \
             \"locks\": {}}}{comma}\n",
            json_escape(&r.label),
            json_escape(&r.qual),
            r.reachable,
            r.allocs,
            r.locks,
        ));
    }
    out.push_str("  ],\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let comma = if i + 1 < report.findings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"pass\": \"{}\", \"message\": \"{}\"}}{comma}\n",
            json_escape(&f.file.to_string_lossy()),
            f.line,
            f.pass.name(),
            json_escape(&f.message),
        ));
    }
    out.push_str("  ],\n  \"sites\": [\n");
    for (i, s) in report.sites.iter().enumerate() {
        let comma = if i + 1 < report.sites.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"construct\": \"{}\", \"root\": \"{}\"}}{comma}\n",
            json_escape(&s.file.to_string_lossy()),
            s.line,
            json_escape(&s.construct),
            json_escape(&s.root),
        ));
    }
    out.push_str("  ]\n}");
    println!("{out}");
}

fn run_audit_graph(root: &std::path::Path) -> ExitCode {
    let report = graph::audit_workspace(root);
    for note in &report.notes {
        eprintln!("{note}");
    }
    for diag in &report.diagnostics {
        println!("{diag}");
    }
    for m in &report.models {
        println!("audit-graph: {}: {} tape nodes, {} parameters", m.model, m.nodes, m.params);
    }
    if report.diagnostics.is_empty() {
        println!("audit-graph: clean ({} models audited)", report.models.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "audit-graph: {} finding(s) across {} models",
            report.diagnostics.len(),
            report.models.len()
        );
        ExitCode::from(1)
    }
}
