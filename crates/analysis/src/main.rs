//! CLI for the PUP correctness tooling.
//!
//! ```text
//! cargo run -p pup-analysis -- lint [--strict] [ROOT]
//! cargo run -p pup-analysis -- audit-graph [ROOT]
//! ```
//!
//! `lint` walks `ROOT/crates/*/src` (default: the current directory),
//! prints one `file:line: [rule] message` diagnostic per violation, and
//! exits 1 when anything is found, 0 on a clean tree, 2 on usage or I/O
//! errors. With `--strict`, stale `// pup-lint: allow(...)` escapes (ones
//! that no longer suppress any finding) are violations too.
//!
//! `audit-graph` instantiates all seven model types on a tiny synthetic
//! dataset, records their training-loss graphs as tape IR, and runs the
//! static passes in `pup_analysis::graph` (dead-parameter, dead-subgraph,
//! shape, op-coverage, determinism). Diagnostics are file-less
//! (`model: [pass] message`); the exit protocol is the same as `lint`.

use std::path::PathBuf;
use std::process::ExitCode;

use pup_analysis::{graph, lint};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let mut strict = false;
            let mut root = PathBuf::from(".");
            for arg in args {
                if arg == "--strict" {
                    strict = true;
                } else {
                    root = PathBuf::from(arg);
                }
            }
            run_lint(&root, strict)
        }
        Some("audit-graph") => {
            let root = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
            run_audit_graph(&root)
        }
        _ => {
            eprintln!("usage: pup-analysis lint [--strict] [ROOT]");
            eprintln!("       pup-analysis audit-graph [ROOT]");
            eprintln!();
            eprintln!("lint walks ROOT/crates/*/src and enforces the workspace lint rules:");
            for rule in lint::Rule::ALLOWABLE {
                eprintln!("  - {}", rule.name());
            }
            eprintln!();
            eprintln!("Suppress a site with `// pup-lint: allow(<rule>)` on or above it;");
            eprintln!("--strict additionally reports escapes that suppress nothing.");
            eprintln!();
            eprintln!("audit-graph records every model's training-loss graph as tape IR");
            eprintln!("and runs the static passes: dead-parameter, dead-subgraph, shape,");
            eprintln!("op-coverage, determinism.");
            ExitCode::from(2)
        }
    }
}

fn run_lint(root: &std::path::Path, strict: bool) -> ExitCode {
    match lint::lint_workspace_with(root, strict) {
        Ok(report) => {
            for diag in &report.diagnostics {
                println!("{diag}");
            }
            if report.diagnostics.is_empty() {
                println!("pup-lint: clean ({} files checked)", report.files_checked);
                ExitCode::SUCCESS
            } else {
                println!(
                    "pup-lint: {} violation(s) in {} files checked",
                    report.diagnostics.len(),
                    report.files_checked
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("pup-analysis: cannot lint {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn run_audit_graph(root: &std::path::Path) -> ExitCode {
    let report = graph::audit_workspace(root);
    for note in &report.notes {
        eprintln!("{note}");
    }
    for diag in &report.diagnostics {
        println!("{diag}");
    }
    for m in &report.models {
        println!("audit-graph: {}: {} tape nodes, {} parameters", m.model, m.nodes, m.params);
    }
    if report.diagnostics.is_empty() {
        println!("audit-graph: clean ({} models audited)", report.models.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "audit-graph: {} finding(s) across {} models",
            report.diagnostics.len(),
            report.models.len()
        );
        ExitCode::from(1)
    }
}
