//! # pup-analysis
//!
//! Correctness tooling for the PUP reproduction, complementing the runtime
//! tape auditor in `pup_tensor::checks`:
//!
//! - [`lint`] — a workspace-aware static lint driver enforcing the repo's
//!   reliability conventions (no `unwrap`/`expect` in non-test library code,
//!   no `panic!` inside backward closures, documented public tensor ops, no
//!   matrix clones inside hot loops). Run it with
//!   `cargo run -p pup-analysis -- lint`; it exits non-zero when any
//!   violation is found. Individual sites opt out with a
//!   `// pup-lint: allow(<rule>)` comment on or directly above the line.
//! - [`gradcheck`] — a reusable central-finite-difference gradient checker
//!   for any scalar-valued function of [`pup_tensor::Var`] inputs. The
//!   integration tests sweep it over every public op in `pup_tensor::ops`
//!   and the BPR losses of all six models.
//! - [`graph`] — static passes over the tape IR exported by
//!   `pup_tensor::tape`: dead-parameter / dead-subgraph detection, shape
//!   re-derivation, op-coverage cross-checks against the gradcheck sweep
//!   registry, and a same-seed determinism audit. Run all of them against
//!   every model with `cargo run -p pup-analysis -- audit-graph`.
//! - [`lex`] / [`syntax`] — the lossless Rust lexer and item/block span
//!   parser the lint and audit passes are built on. Tokens tile the source
//!   byte-for-byte; scopes (test items, fn bodies, loop bodies,
//!   statements) are computed by bracket matching on code tokens, so
//!   needles in strings, comments or wrapped lines can never confuse a
//!   rule.
//! - [`concurrency`] — the Send/Sync shareability audit gating the
//!   arena-tape migration: per-crate manifests of shared-state policy, a
//!   ratcheted worklist of `Rc`/`RefCell` sites in `pup-tensor`, a
//!   Mutex/RwLock acquisition-order pass over the serving path, and an
//!   atomic-ordering lint. Run it with
//!   `cargo run -p pup-analysis -- audit-concurrency`.
//! - [`callgraph`] / [`hotpath`] — the workspace-wide interprocedural call
//!   graph (free fns, methods with conservative trait fan-out, closures
//!   attributed to their enclosing fn) and the hot-path certifier built on
//!   it: a panic-reachability fixpoint that proves every `// pup-hot:`
//!   root panic-free modulo reasoned `// pup-audit: allow(hotpath-panic)`
//!   escapes, plus a ratcheted per-root allocation/lock budget
//!   (`results/hotpath_ratchet.json`). Run it with
//!   `cargo run -p pup-analysis -- audit-hotpath`.
//! - [`fix`] — mechanical cleanup for `lint --fix`: deletes stale
//!   `// pup-lint: allow(…)` escapes and stale `// pup-audit: allow(…)`
//!   audit escapes in place, idempotently.

pub mod callgraph;
pub mod concurrency;
pub mod fix;
pub mod gradcheck;
pub mod graph;
pub mod hotpath;
pub mod lex;
pub mod lint;
pub mod syntax;
