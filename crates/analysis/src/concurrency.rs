//! Concurrency-safety audit: the static gate for the arena-tape migration.
//!
//! The serving stack (`pup-serve`, `pup-obs`, `pup-ckpt`) shares scorers
//! across worker threads, but the autograd tape in `pup-tensor` is built
//! on `Rc<RefCell<…>>` and is `!Send` — the single blocker for sharing one
//! model instance across the fleet (ROADMAP item: arena tape). This audit
//! makes that boundary *checkable* instead of tribal:
//!
//! - **send-sync manifest** — every crate carries a shareability policy.
//!   `serve`/`obs`/`ckpt` are *must-be-Send*: any `Rc`, `RefCell`, `Cell`,
//!   `UnsafeCell`, `thread_local!` or `static mut` there is a finding
//!   unless it carries a reviewed escape
//!   (`// pup-audit: allow(non-send): <reason>` — the reason is
//!   mandatory). `tensor` is the *migration target*: its non-Send sites
//!   are not violations but a **worklist**, counted against a committed
//!   ratchet (`results/concurrency_ratchet.json`) that may only go down.
//! - **lock discipline** — Mutex/RwLock declarations and acquisitions are
//!   collected into an acquisition-order graph (interprocedural, with
//!   guard-returning helpers like `locked()` resolved through parameter
//!   substitution). Ordering cycles are findings, as is holding a guard
//!   across a call into scoring code (`crates/models`).
//! - **atomic-ordering lint** — `Ordering::Relaxed` on an `AtomicBool`
//!   load/store is flagged: a relaxed flag publishes no happens-before
//!   edge, so gating a data handoff on it is a race.
//!
//! Everything runs on the same [`crate::lex`]/[`crate::syntax`] token
//! machinery as the lint driver, so strings, comments and wrapped lines
//! can never confuse a pass. Run it with
//! `cargo run -p pup-analysis -- audit-concurrency`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lex::TokenKind;
use crate::lint::workspace_rs_files;
use crate::syntax::{in_any, FnDef, SourceFile};

/// Relative path of the committed ratchet file.
pub const RATCHET_PATH: &str = "results/concurrency_ratchet.json";

/// Escape kinds this audit owns (reason + staleness are checked here).
pub const CONCURRENCY_KINDS: &[&str] =
    &["non-send", "lock-order", "guard-across-scoring", "relaxed-handoff"];

/// Every valid `// pup-audit: allow(<kind>)` across all audits. This audit
/// owns unknown-kind detection for the whole family; kinds owned by other
/// audits (`hotpath-panic` → `audit-hotpath`) are hygiene-checked there.
pub const ALL_ESCAPE_KINDS: &[&str] =
    &["non-send", "lock-order", "guard-across-scoring", "relaxed-handoff", "hotpath-panic"];

/// The audit pass a finding came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// A non-Send construct in a must-be-Send crate.
    NonSend,
    /// A lock-ordering cycle.
    LockOrder,
    /// A guard held across a call into scoring code.
    GuardAcrossScoring,
    /// `Ordering::Relaxed` gating an `AtomicBool` handoff.
    RelaxedHandoff,
    /// The tensor worklist disagrees with the committed ratchet.
    Ratchet,
    /// A malformed or stale `// pup-audit: allow(…)` escape.
    Escape,
}

impl Pass {
    /// The pass name as used in escapes and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Pass::NonSend => "non-send",
            Pass::LockOrder => "lock-order",
            Pass::GuardAcrossScoring => "guard-across-scoring",
            Pass::RelaxedHandoff => "relaxed-handoff",
            Pass::Ratchet => "ratchet",
            Pass::Escape => "escape",
        }
    }
}

/// One audit finding (a violation; the audit exits non-zero on any).
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The pass that produced it.
    pub pass: Pass,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.pass.name(), self.message)
    }
}

/// One tensor-crate migration site (informational, ratchet-counted).
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// File the site is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The non-Send construct (`Rc`, `RefCell`, `thread_local!`, …).
    pub construct: String,
}

/// Result of a full workspace audit.
#[derive(Debug)]
pub struct AuditReport {
    /// Violations; non-empty means exit 1.
    pub findings: Vec<Finding>,
    /// The arena-tape refactor worklist (tensor non-Send sites).
    pub worklist: Vec<WorkItem>,
    /// Lock ids discovered by the lock-discipline pass.
    pub locks: Vec<String>,
    /// Acquisition-order edges `from -> to` with an example site.
    pub lock_edges: Vec<(String, String, PathBuf, usize)>,
    /// The ratchet value read from [`RATCHET_PATH`], if present.
    pub ratchet_recorded: Option<usize>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Stale escapes (a `lint --fix` run may delete them): file, 1-based
    /// line of the marker, escape kind.
    pub stale_escapes: Vec<(PathBuf, usize, String)>,
}

/// Per-crate shareability policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// Shared across worker threads; non-Send constructs are violations.
    MustBeSend,
    /// The arena-tape migration target; non-Send sites form the worklist.
    MigrationTarget,
    /// No constraint.
    Unconstrained,
}

fn crate_policy(crate_name: &str) -> Policy {
    match crate_name {
        "serve" | "obs" | "ckpt" => Policy::MustBeSend,
        "tensor" => Policy::MigrationTarget,
        _ => Policy::Unconstrained,
    }
}

/// The crate directory name for a workspace file path (`crates/<name>/…`).
/// The *last* `crates` component wins so roots that themselves live under
/// a `crates/` directory (or contain `..` hops) resolve correctly.
fn crate_of(path: &Path) -> String {
    let comps: Vec<String> =
        path.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    comps
        .iter()
        .rposition(|c| c == "crates")
        .and_then(|i| comps.get(i + 1))
        .cloned()
        .unwrap_or_default()
}

/// A `// pup-audit: allow(<kind>): <reason>` escape.
struct AuditEscape {
    file: usize,
    line: usize,
    kind: String,
    has_reason: bool,
    used: bool,
}

/// A lock (or atomic-flag) reference inside a function: either a concrete
/// workspace lock id or the caller's `i`-th parameter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum LockRef {
    Concrete(String),
    Param(usize),
}

/// An ordered event inside a function body.
#[derive(Debug, Clone)]
enum Event {
    /// A direct `.lock()`/`.read()`/`.write()` acquisition; the guard is
    /// live until byte offset `until`.
    Acquire { lock: LockRef, offset: usize, line: usize, until: usize },
    /// A call to a named function; `args` holds each argument's resolved
    /// lock reference (when its base identifier names one). If the call is
    /// `let`-bound and the target returns a guard, the substituted locks
    /// stay live until `until_if_guard`.
    Call {
        name: String,
        offset: usize,
        line: usize,
        args: Vec<Option<LockRef>>,
        let_bound: bool,
        until_if_guard: usize,
        stmt_end: usize,
    },
}

impl Event {
    fn offset(&self) -> usize {
        match self {
            Event::Acquire { offset, .. } | Event::Call { offset, .. } => *offset,
        }
    }
}

/// A function's audit-relevant shape.
struct FnInfo {
    name: String,
    /// Parameter names; `true` marks a Mutex/RwLock-typed parameter. Only
    /// read back by unit tests — the passes consume params during event
    /// construction — but kept on the struct as the fn's audit record.
    #[cfg_attr(not(test), allow(dead_code))]
    params: Vec<(String, bool)>,
    returns_guard: bool,
    scoring: bool,
    events: Vec<Event>,
    /// Locks acquired directly or transitively (fixpoint-computed).
    summary: BTreeSet<LockRef>,
}

/// Everything extracted from one file before the global passes run.
struct FileFacts {
    path: PathBuf,
    crate_name: String,
    /// Lock name -> lock id declared in this file.
    lock_decls: BTreeMap<String, String>,
    /// Names declared as `AtomicBool` in this file.
    atomic_bools: BTreeSet<String>,
    non_send_sites: Vec<(usize, String)>,
    relaxed_sites: Vec<(usize, String)>,
    escapes: Vec<(usize, String, bool)>,
    fns: Vec<FnInfo>,
}

/// Runs the full audit over `<root>/crates/*/src`.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let files = workspace_rs_files(root)?;
    let mut facts = Vec::new();
    for file in &files {
        let source = fs::read_to_string(file)?;
        facts.push(extract_facts(file, &source));
    }
    let mut report = AuditReport {
        findings: Vec::new(),
        worklist: Vec::new(),
        locks: Vec::new(),
        lock_edges: Vec::new(),
        ratchet_recorded: None,
        files_checked: files.len(),
        stale_escapes: Vec::new(),
    };

    let mut escapes: Vec<AuditEscape> = facts
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| {
            f.escapes.iter().map(move |(line, kind, has_reason)| AuditEscape {
                file: fi,
                line: *line,
                kind: kind.to_string(),
                has_reason: *has_reason,
                used: false,
            })
        })
        .collect();

    send_sync_pass(&facts, &mut escapes, &mut report);
    relaxed_pass(&facts, &mut escapes, &mut report);
    lock_pass(&facts, &mut escapes, &mut report);
    ratchet_pass(root, &mut report);

    // Escape hygiene: every escape must name a known pass, carry a reason,
    // and still suppress something. Kinds owned by other audits are left
    // to them (only unknown-kind detection is centralised here).
    for esc in &escapes {
        let known = ALL_ESCAPE_KINDS.contains(&esc.kind.as_str());
        let owned = CONCURRENCY_KINDS.contains(&esc.kind.as_str());
        let message = if !known {
            format!("audit escape names unknown pass `{}`", esc.kind)
        } else if !owned {
            continue;
        } else if !esc.has_reason {
            format!(
                "audit escape `allow({})` has no reason; write \
                 `// pup-audit: allow({}): <why this is safe>`",
                esc.kind, esc.kind
            )
        } else if !esc.used {
            report.stale_escapes.push((
                facts[esc.file].path.to_path_buf(),
                esc.line,
                esc.kind.to_string(),
            ));
            format!("stale audit escape: `allow({})` suppresses nothing; delete it", esc.kind)
        } else {
            continue;
        };
        report.findings.push(Finding {
            file: facts[esc.file].path.to_path_buf(),
            line: esc.line,
            pass: Pass::Escape,
            message,
        });
    }

    report.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.worklist.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Rewrites the committed ratchet to the current tensor worklist size.
pub fn update_ratchet(root: &Path, count: usize) -> io::Result<()> {
    let path = root.join(RATCHET_PATH);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let body = format!(
        "{{\n  \"schema\": \"pup-audit-ratchet/1\",\n  \"tensor_non_send_sites\": {count}\n}}\n"
    );
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, body)?;
    fs::rename(&tmp, path)
}

/// Reads the committed ratchet value, if the file exists and parses.
pub fn read_ratchet(root: &Path) -> Option<usize> {
    let text = fs::read_to_string(root.join(RATCHET_PATH)).ok()?;
    let at = text.find("\"tensor_non_send_sites\"")?;
    let rest = &text[at..];
    let colon = rest.find(':')?;
    let digits: String =
        rest[colon + 1..].trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn ratchet_pass(root: &Path, report: &mut AuditReport) {
    let count = report.worklist.len();
    let recorded = read_ratchet(root);
    report.ratchet_recorded = recorded;
    let ratchet_file = root.join(RATCHET_PATH);
    match recorded {
        None if count == 0 => {}
        None => report.findings.push(Finding {
            file: ratchet_file,
            line: 1,
            pass: Pass::Ratchet,
            message: format!(
                "no ratchet recorded but the tensor worklist has {count} non-Send \
                 site(s); run `audit-concurrency --update-ratchet` and commit the result"
            ),
        }),
        Some(r) if count > r => report.findings.push(Finding {
            file: ratchet_file,
            line: 1,
            pass: Pass::Ratchet,
            message: format!(
                "tensor non-Send worklist grew: {count} site(s) vs ratchet {r}; the \
                 arena-tape migration only moves forward — remove the new Rc/RefCell \
                 sites instead"
            ),
        }),
        Some(r) if count < r => report.findings.push(Finding {
            file: ratchet_file,
            line: 1,
            pass: Pass::Ratchet,
            message: format!(
                "tensor non-Send worklist shrank: {count} site(s) vs ratchet {r}; \
                 lock in the progress with `audit-concurrency --update-ratchet`"
            ),
        }),
        Some(_) => {}
    }
}

/// Marks a matching escape (same line or the line above) used and returns
/// whether the finding is suppressed.
fn suppressed(escapes: &mut [AuditEscape], file: usize, line: usize, kind: &str) -> bool {
    let mut hit = false;
    for esc in escapes.iter_mut() {
        if esc.file == file
            && esc.kind == kind
            && esc.has_reason
            && (esc.line == line || esc.line + 1 == line)
        {
            esc.used = true;
            hit = true;
        }
    }
    hit
}

fn send_sync_pass(facts: &[FileFacts], escapes: &mut [AuditEscape], report: &mut AuditReport) {
    for (fi, f) in facts.iter().enumerate() {
        match crate_policy(&f.crate_name) {
            Policy::MustBeSend => {
                for (line, construct) in &f.non_send_sites {
                    if suppressed(escapes, fi, *line, "non-send") {
                        continue;
                    }
                    report.findings.push(Finding {
                        file: f.path.to_path_buf(),
                        line: *line,
                        pass: Pass::NonSend,
                        message: format!(
                            "`{construct}` in must-be-Send crate `{}`: this state is \
                             shared across worker threads; use Arc/Mutex/atomics, or \
                             annotate `// pup-audit: allow(non-send): <reason>`",
                            f.crate_name
                        ),
                    });
                }
            }
            Policy::MigrationTarget => {
                for (line, construct) in &f.non_send_sites {
                    report.worklist.push(WorkItem {
                        file: f.path.to_path_buf(),
                        line: *line,
                        construct: construct.to_string(),
                    });
                }
            }
            Policy::Unconstrained => {}
        }
    }
}

fn relaxed_pass(facts: &[FileFacts], escapes: &mut [AuditEscape], report: &mut AuditReport) {
    for (fi, f) in facts.iter().enumerate() {
        for (line, name) in &f.relaxed_sites {
            if suppressed(escapes, fi, *line, "relaxed-handoff") {
                continue;
            }
            report.findings.push(Finding {
                file: f.path.to_path_buf(),
                line: *line,
                pass: Pass::RelaxedHandoff,
                message: format!(
                    "`Ordering::Relaxed` on AtomicBool `{name}`: a relaxed flag \
                     publishes no happens-before edge, so readers can see the flag \
                     before the data it gates; use Release/Acquire, or annotate \
                     `// pup-audit: allow(relaxed-handoff): <reason>`"
                ),
            });
        }
    }
}

/// The interprocedural lock-discipline pass: fixpoint acquire summaries,
/// edge construction, cycle detection, guard-across-scoring.
fn lock_pass(facts: &[FileFacts], escapes: &mut [AuditEscape], report: &mut AuditReport) {
    // Global lock-name resolution: name -> ids (ambiguity kept to detect).
    let mut global: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in facts {
        for (name, id) in &f.lock_decls {
            global.entry(name).or_default().insert(id);
        }
    }
    report.locks = global
        .values()
        .flatten()
        .map(|s| s.to_string())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    // fn name -> indices into a flat fn list.
    let all_fns: Vec<(usize, usize)> = facts
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| (0..f.fns.len()).map(move |k| (fi, k)))
        .collect();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (flat, &(fi, k)) in all_fns.iter().enumerate() {
        by_name.entry(&facts[fi].fns[k].name).or_default().push(flat);
    }

    // Fixpoint: propagate summaries through calls with param substitution.
    let mut summaries: Vec<BTreeSet<LockRef>> =
        all_fns.iter().map(|&(fi, k)| facts[fi].fns[k].summary.clone()).collect();
    for _ in 0..summaries.len().max(4) {
        let mut changed = false;
        for (flat, &(fi, k)) in all_fns.iter().enumerate() {
            let f = &facts[fi].fns[k];
            let mut add = Vec::new();
            for ev in &f.events {
                let Event::Call { name, args, .. } = ev else { continue };
                for &target in by_name.get(name.as_str()).into_iter().flatten() {
                    for lock in &summaries[target] {
                        match lock {
                            LockRef::Concrete(id) => add.push(LockRef::Concrete(id.to_string())),
                            LockRef::Param(i) => {
                                if let Some(Some(arg)) = args.get(*i) {
                                    // pup-lint: allow(clone-in-loop) — a two-variant enum, not a matrix
                                    add.push(arg.clone());
                                }
                            }
                        }
                    }
                }
            }
            for lock in add {
                changed |= summaries[flat].insert(lock);
            }
        }
        if !changed {
            break;
        }
    }

    // Per-fn: expand guard-returning calls into acquisitions, then build
    // ordering edges among everything held concurrently.
    let mut edges: BTreeMap<(String, String), (PathBuf, usize)> = BTreeMap::new();
    for &(fi, k) in &all_fns {
        let f = &facts[fi].fns[k];
        let mut held: Vec<(String, usize, usize, usize)> = Vec::new(); // (id, offset, until, line)
        let mut calls: Vec<(&Event, Vec<usize>)> = Vec::new();
        for ev in &f.events {
            match ev {
                Event::Acquire { lock: LockRef::Concrete(id), offset, line, until } => {
                    held.push((id.to_string(), *offset, *until, *line));
                }
                Event::Acquire { .. } => {}
                Event::Call { name, .. } => {
                    let targets: Vec<usize> =
                        by_name.get(name.as_str()).cloned().unwrap_or_default();
                    calls.push((ev, targets));
                }
            }
        }
        // Guard-returning helper calls are acquisitions at the call site.
        for (ev, targets) in &calls {
            let Event::Call { args, line, offset, let_bound, until_if_guard, stmt_end, .. } = ev
            else {
                continue;
            };
            for &t in targets {
                let (tfi, tk) = all_fns[t];
                let target = &facts[tfi].fns[tk];
                if !target.returns_guard {
                    continue;
                }
                let until = if *let_bound { *until_if_guard } else { *stmt_end };
                for lock in &summaries[t] {
                    let id = match lock {
                        LockRef::Concrete(id) => Some(id.to_string()),
                        LockRef::Param(i) => match args.get(*i) {
                            Some(Some(LockRef::Concrete(id))) => Some(id.to_string()),
                            _ => None,
                        },
                    };
                    if let Some(id) = id {
                        held.push((id, *offset, until, *line));
                    }
                }
            }
        }
        held.sort_by_key(|&(_, offset, _, _)| offset);
        // Edges: a -> b for every b acquired while a is live.
        for (i, (a_id, a_off, a_until, _)) in held.iter().enumerate() {
            for (b_id, b_off, _, b_line) in held.iter().skip(i + 1) {
                if b_off < a_until
                    && a_id != b_id
                    && !suppressed(escapes, fi, *b_line, "lock-order")
                {
                    edges
                        .entry((a_id.to_string(), b_id.to_string()))
                        .or_insert_with(|| (facts[fi].path.to_path_buf(), *b_line));
                }
            }
            // Calls made while the guard is live: transitive edges plus the
            // guard-across-scoring check.
            for (ev, targets) in &calls {
                let Event::Call { name, offset, line, args, .. } = ev else { continue };
                if *offset <= *a_off || *offset >= *a_until {
                    continue;
                }
                for &t in targets {
                    let (tfi, tk) = all_fns[t];
                    let target = &facts[tfi].fns[tk];
                    if target.scoring && !suppressed(escapes, fi, *line, "guard-across-scoring") {
                        report.findings.push(Finding {
                            file: facts[fi].path.to_path_buf(),
                            line: *line,
                            pass: Pass::GuardAcrossScoring,
                            message: format!(
                                "guard on `{a_id}` held across call into scoring fn \
                                 `{name}`: scoring latency becomes lock hold time and \
                                 stalls every other thread; drop the guard first, or \
                                 annotate `// pup-audit: allow(guard-across-scoring): \
                                 <reason>`"
                            ),
                        });
                    }
                    for lock in &summaries[t] {
                        let id = match lock {
                            LockRef::Concrete(id) => Some(id.to_string()),
                            LockRef::Param(i) => match args.get(*i) {
                                Some(Some(LockRef::Concrete(id))) => Some(id.to_string()),
                                _ => None,
                            },
                        };
                        let Some(id) = id else { continue };
                        if id != *a_id && !suppressed(escapes, fi, *line, "lock-order") {
                            edges
                                .entry((a_id.to_string(), id))
                                .or_insert_with(|| (facts[fi].path.to_path_buf(), *line));
                        }
                    }
                }
            }
        }
    }

    report.lock_edges = edges
        .iter()
        .map(|((a, b), (p, l))| (a.to_string(), b.to_string(), p.clone(), *l))
        .collect();

    // Cycle detection over the edge graph.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![start];
        let mut on_path = BTreeSet::from([start]);
        find_cycles(start, &adj, &mut stack, &mut on_path, &mut |cycle| {
            let mut key: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            key.sort();
            if reported.insert(key) {
                let (file, line) = edges
                    .get(&(cycle[0].to_string(), cycle[1 % cycle.len()].to_string()))
                    .cloned()
                    .unwrap_or_else(|| (PathBuf::from("?"), 0));
                report.findings.push(Finding {
                    file,
                    line,
                    pass: Pass::LockOrder,
                    message: format!(
                        "lock-ordering cycle: {} -> {}; two threads taking these locks \
                         in opposite orders deadlock — pick one global order",
                        cycle.join(" -> "),
                        cycle[0]
                    ),
                });
            }
        });
    }
}

fn find_cycles<'g>(
    node: &'g str,
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
    stack: &mut Vec<&'g str>,
    on_path: &mut BTreeSet<&'g str>,
    emit: &mut impl FnMut(&[&str]),
) {
    for &next in adj.get(node).into_iter().flatten() {
        if next == stack[0] {
            emit(stack);
        } else if !on_path.contains(next) {
            stack.push(next);
            on_path.insert(next);
            find_cycles(next, adj, stack, on_path, emit);
            stack.pop();
            on_path.remove(next);
        }
    }
}

/// Whether the non-Send type ident at code position `p` is merely the
/// qualifier of an accessor path such as `Cell::get` passed to
/// `LocalKey::with`. Those reads are not migration *sites* — the
/// declaration is — so they are skipped. Constructor-ish members
/// (`Rc::new`, `Rc::clone`, `RefCell::new`, …) still count: each one is a
/// place the refactor must touch.
fn is_accessor_path(file: &SourceFile<'_>, p: usize) -> bool {
    let Some(&c1) = file.code.get(p + 1) else { return false };
    let Some(&c2) = file.code.get(p + 2) else { return false };
    if !(file.is_punct(c1, b':') && file.is_punct(c2, b':')) {
        return false;
    }
    let Some(&member) = file.code.get(p + 3) else { return false };
    file.tokens[member].kind == TokenKind::Ident
        && !matches!(file.text(member), "new" | "from" | "clone" | "downgrade" | "default")
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] =
    &["if", "while", "for", "match", "loop", "return", "in", "else", "fn", "move", "as"];

/// Extracts every audit-relevant fact from one file.
fn extract_facts(path: &Path, source: &str) -> FileFacts {
    let file = SourceFile::parse(source);
    let test_spans = file.test_spans();
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("?").to_string();
    let mut facts = FileFacts {
        path: path.to_path_buf(),
        crate_name: crate_of(path),
        lock_decls: BTreeMap::new(),
        atomic_bools: BTreeSet::new(),
        non_send_sites: Vec::new(),
        relaxed_sites: Vec::new(),
        escapes: Vec::new(),
        fns: Vec::new(),
    };

    // Escapes.
    const MARKER: &str = "pup-audit: allow(";
    for t in &file.tokens {
        let plain = matches!(
            t.kind,
            TokenKind::LineComment { doc: false } | TokenKind::BlockComment { doc: false }
        );
        if !plain {
            continue;
        }
        let text = t.text(source);
        let Some(at) = text.find(MARKER) else { continue };
        let rest = &text[at + MARKER.len()..];
        let Some(close) = rest.find(')') else { continue };
        let kind = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let has_reason = after.strip_prefix(':').map(str::trim).is_some_and(|r| !r.is_empty());
        facts.escapes.push((file.line_of(t.start + at), kind, has_reason));
    }

    // Non-Send constructs.
    for (p, &ti) in file.code.iter().enumerate() {
        let at = file.tokens[ti].start;
        if in_any(&test_spans, at) {
            continue;
        }
        let construct = match file.tokens[ti].kind {
            TokenKind::Ident => match file.text(ti) {
                w @ ("Rc" | "RefCell" | "Cell" | "UnsafeCell") if !is_accessor_path(&file, p) => {
                    Some(w.to_string())
                }
                "thread_local" if file.code.get(p + 1).is_some_and(|&n| file.is_punct(n, b'!')) => {
                    Some("thread_local!".to_string())
                }
                "static" if file.code.get(p + 1).is_some_and(|&n| file.is_ident(n, "mut")) => {
                    Some("static mut".to_string())
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(construct) = construct {
            let line = file.line_of(at);
            if !facts.non_send_sites.iter().any(|(l, c)| *l == line && *c == construct) {
                facts.non_send_sites.push((line, construct));
            }
        }
    }

    // Lock and AtomicBool declarations.
    for (p, &ti) in file.code.iter().enumerate() {
        if file.tokens[ti].kind != TokenKind::Ident {
            continue;
        }
        let word = file.text(ti);
        if !matches!(word, "Mutex" | "RwLock" | "AtomicBool") {
            continue;
        }
        // `Name::new(` constructor — if in a let statement, the binding is
        // the declaration.
        if file.match_seq(p, &[word, ":", ":", "new"]) {
            let at = file.tokens[ti].start;
            if let Some(stmt) = file.enclosing_statement(at) {
                if stmt.is_let {
                    if let Some(sp) = file.code_pos(stmt.first) {
                        if let Some(&name_ti) = file.code.get(sp + 1) {
                            if file.tokens[name_ti].kind == TokenKind::Ident {
                                register_decl(&mut facts, word, file.text(name_ti), &stem);
                            }
                        }
                    }
                }
            }
            continue;
        }
        // Type-ascription form: walk back over the type-path prefix
        // (`Arc<`, `std::sync::`, …) to the single `:` that binds a name.
        let mut q = p;
        while q > 0 {
            q -= 1;
            let tj = file.code[q];
            if file.is_punct(tj, b':') {
                let double = q > 0 && file.is_punct(file.code[q - 1], b':');
                if double {
                    q -= 1; // skip the `::` pair, keep walking the path
                    continue;
                }
                // Single colon: type ascription. The token before names it.
                if q > 0 {
                    let name_ti = file.code[q - 1];
                    if file.tokens[name_ti].kind == TokenKind::Ident {
                        register_decl(&mut facts, word, file.text(name_ti), &stem);
                    }
                }
                break;
            }
            let ok = file.tokens[tj].kind == TokenKind::Ident || file.is_punct(tj, b'<');
            if !ok {
                break;
            }
        }
    }

    // `Ordering::Relaxed` on declared AtomicBools.
    for meth in ["load", "store"] {
        for p in file.find_seq(&[".", meth, "("]) {
            let at = file.tokens[file.code[p]].start;
            if in_any(&test_spans, at) || p == 0 {
                continue;
            }
            let recv = file.code[p - 1];
            if file.tokens[recv].kind != TokenKind::Ident {
                continue;
            }
            let name = file.text(recv);
            if !facts.atomic_bools.contains(name) {
                continue;
            }
            let open = file.code[p + 2];
            let Some(close) = file.matching(open) else { continue };
            let relaxed =
                file.code.iter().any(|&i| i > open && i < close && file.is_ident(i, "Relaxed"));
            if relaxed {
                let line = file.line_of(at);
                if !facts.relaxed_sites.iter().any(|(l, n)| *l == line && n == name) {
                    facts.relaxed_sites.push((line, name.to_string()));
                }
            }
        }
    }

    // Function shapes and events.
    let defs = file.fn_defs();
    for def in &defs {
        facts.fns.push(extract_fn(&file, def, &facts.lock_decls, path));
    }
    facts
}

fn register_decl(facts: &mut FileFacts, type_word: &str, name: &str, stem: &str) {
    if type_word == "AtomicBool" {
        facts.atomic_bools.insert(name.to_string());
    } else {
        facts.lock_decls.entry(name.to_string()).or_insert_with(|| format!("{stem}::{name}"));
    }
}

fn extract_fn(
    file: &SourceFile<'_>,
    def: &FnDef,
    lock_decls: &BTreeMap<String, String>,
    path: &Path,
) -> FnInfo {
    let name = def.name.map(|i| file.text(i)).unwrap_or("?").to_string();
    let path_str = path.to_string_lossy().replace('\\', "/");
    let scoring = path_str.contains("models/src");

    // Parameters: split the param list on depth-0 commas.
    let mut params: Vec<(String, bool)> = Vec::new();
    if let Some((open, close)) = def.params {
        let (Some(op), Some(cp)) = (file.code_pos(open), file.code_pos(close)) else {
            return FnInfo {
                name,
                params,
                returns_guard: false,
                scoring,
                events: Vec::new(),
                summary: BTreeSet::new(),
            };
        };
        let mut seg: Vec<usize> = Vec::new();
        let mut q = op + 1;
        while q < cp {
            let ti = file.code[q];
            if file.is_punct(ti, b'(') || file.is_punct(ti, b'[') || file.is_punct(ti, b'{') {
                if let Some(mp) = file.matching(ti).and_then(|c| file.code_pos(c)) {
                    for r in q..=mp {
                        seg.push(file.code[r]);
                    }
                    q = mp + 1;
                    continue;
                }
            }
            if file.is_punct(ti, b',') {
                push_param(file, &seg, &mut params);
                seg.clear();
            } else {
                seg.push(ti);
            }
            q += 1;
        }
        push_param(file, &seg, &mut params);
    }

    // Return type: guard-returning helpers.
    let mut returns_guard = false;
    if let (Some((_, pc)), Some((bo, _))) = (def.params, def.body) {
        if let (Some(start), Some(end)) = (file.code_pos(pc), file.code_pos(bo)) {
            for r in start..end {
                let ti = file.code[r];
                if file.tokens[ti].kind == TokenKind::Ident
                    && matches!(
                        file.text(ti),
                        "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard"
                    )
                {
                    returns_guard = true;
                }
            }
        }
    }

    let mut events = Vec::new();
    if let Some((bo, bc)) = def.body {
        let body = (file.tokens[bo].start, file.tokens[bc].end);
        collect_events(file, body, &params, lock_decls, &mut events);
    }

    let summary = events
        .iter()
        .filter_map(|ev| match ev {
            Event::Acquire { lock, .. } => Some(lock.clone()),
            Event::Call { .. } => None,
        })
        .collect();
    FnInfo { name, params, returns_guard, scoring, events, summary }
}

fn push_param(file: &SourceFile<'_>, seg: &[usize], params: &mut Vec<(String, bool)>) {
    let Some(&first_ident) =
        seg.iter().find(|&&ti| file.tokens[ti].kind == TokenKind::Ident && file.text(ti) != "mut")
    else {
        return;
    };
    let is_lock = seg.iter().any(|&ti| {
        file.tokens[ti].kind == TokenKind::Ident && matches!(file.text(ti), "Mutex" | "RwLock")
    });
    params.push((file.text(first_ident).to_string(), is_lock));
}

/// Collects acquire and call events inside one fn body (byte span).
fn collect_events(
    file: &SourceFile<'_>,
    body: (usize, usize),
    params: &[(String, bool)],
    lock_decls: &BTreeMap<String, String>,
    events: &mut Vec<Event>,
) {
    let resolve = |name: &str| -> Option<LockRef> {
        if let Some(i) = params.iter().position(|(p, is_lock)| *is_lock && p == name) {
            return Some(LockRef::Param(i));
        }
        lock_decls.get(name).map(|id| LockRef::Concrete(id.to_string()))
    };
    let block_end = |at: usize| -> usize {
        file.enclosing_brace(at)
            .and_then(|open| file.matching(open))
            .map(|close| file.tokens[close].end)
            .unwrap_or(body.1)
    };

    // Direct acquisitions: `recv.lock()` / `.read()` / `.write()`.
    for meth in ["lock", "read", "write"] {
        for p in file.find_seq(&[".", meth, "(", ")"]) {
            let at = file.tokens[file.code[p]].start;
            if at < body.0 || at >= body.1 || p == 0 {
                continue;
            }
            let recv = file.code[p - 1];
            if file.tokens[recv].kind != TokenKind::Ident {
                continue;
            }
            let Some(lock) = resolve(file.text(recv)) else { continue };
            let Some(stmt) = file.enclosing_statement(at) else { continue };
            let until = if stmt.is_let { block_end(at) } else { stmt.span.1 };
            events.push(Event::Acquire { lock, offset: at, line: file.line_of(at), until });
        }
    }

    // Calls: `name(` not preceded by `.` (method calls are out of scope).
    for p in 0..file.code.len() {
        let ti = file.code[p];
        if file.tokens[ti].kind != TokenKind::Ident {
            continue;
        }
        let at = file.tokens[ti].start;
        if at < body.0 || at >= body.1 {
            continue;
        }
        let Some(&open) = file.code.get(p + 1) else { continue };
        if !file.is_punct(open, b'(') {
            continue;
        }
        let name = file.text(ti);
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        if p > 0 && file.is_punct(file.code[p - 1], b'.') {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if p > 0 && file.is_ident(file.code[p - 1], "fn") {
            continue;
        }
        let Some(close) = file.matching(open) else { continue };
        // Argument base identifiers, per depth-0 comma segment: the last
        // ident of the leading `a.b.c` chain (so `&self.stats` -> `stats`).
        let (Some(op), Some(cp)) = (file.code_pos(open), file.code_pos(close)) else { continue };
        let mut args: Vec<Option<LockRef>> = Vec::new();
        let mut seg: Vec<usize> = Vec::new();
        let mut q = op + 1;
        while q <= cp {
            let tj = file.code[q];
            let end_of_arg = q == cp || file.is_punct(tj, b',');
            if end_of_arg {
                if !seg.is_empty() {
                    args.push(arg_base(file, &seg).and_then(|base| resolve(&base)));
                }
                seg.clear();
            } else if file.is_punct(tj, b'(') || file.is_punct(tj, b'[') || file.is_punct(tj, b'{')
            {
                if let Some(mp) = file.matching(tj).and_then(|c| file.code_pos(c)) {
                    for r in q..=mp {
                        seg.push(file.code[r]);
                    }
                    q = mp + 1;
                    continue;
                }
                seg.push(tj);
            } else {
                seg.push(tj);
            }
            q += 1;
        }
        let Some(stmt) = file.enclosing_statement(at) else { continue };
        events.push(Event::Call {
            name: name.to_string(),
            offset: at,
            line: file.line_of(at),
            args,
            let_bound: stmt.is_let,
            until_if_guard: block_end(at),
            stmt_end: stmt.span.1,
        });
    }
    events.sort_by_key(Event::offset);
}

/// The identifier a call argument resolves locks through: the final ident
/// of its leading field chain (`&self.stats` -> `stats`, `&m` -> `m`).
fn arg_base(file: &SourceFile<'_>, seg: &[usize]) -> Option<String> {
    let mut last: Option<usize> = None;
    for &ti in seg {
        match file.tokens[ti].kind {
            TokenKind::Ident => last = Some(ti),
            TokenKind::Punct
                if matches!(file.src.as_bytes()[file.tokens[ti].start], b'&' | b'.') => {}
            _ => break,
        }
    }
    last.map(|ti| file.text(ti).to_string())
}

/// Escapes a string for inclusion in JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            // pup-lint: allow(as-cast-truncation) — char to u32 is lossless
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(path: &str, src: &str) -> FileFacts {
        extract_facts(Path::new(path), src)
    }

    #[test]
    fn crate_policies() {
        assert_eq!(crate_policy("serve"), Policy::MustBeSend);
        assert_eq!(crate_policy("obs"), Policy::MustBeSend);
        assert_eq!(crate_policy("ckpt"), Policy::MustBeSend);
        assert_eq!(crate_policy("tensor"), Policy::MigrationTarget);
        assert_eq!(crate_policy("models"), Policy::Unconstrained);
        assert_eq!(crate_of(Path::new("crates/serve/src/lib.rs")), "serve");
    }

    #[test]
    fn non_send_constructs_collected_outside_tests() {
        let src = "use std::rc::Rc;\nuse std::cell::RefCell;\n\npub struct T {\n    inner: Rc<RefCell<u32>>,\n}\n\nstatic mut COUNTER: u32 = 0;\n\nthread_local! {\n    static BUF: u32 = 0;\n}\n\n#[cfg(test)]\nmod tests {\n    use std::rc::Rc;\n    fn f() { let _ = Rc::new(1); }\n}\n";
        let f = facts("crates/serve/src/lib.rs", src);
        let kinds: Vec<&str> = f.non_send_sites.iter().map(|(_, c)| c.as_str()).collect();
        assert!(kinds.contains(&"Rc"));
        assert!(kinds.contains(&"RefCell"));
        assert!(kinds.contains(&"static mut"));
        assert!(kinds.contains(&"thread_local!"));
        // Lines 15-16 are test code: excluded.
        assert!(f.non_send_sites.iter().all(|(l, _)| *l < 14), "{:?}", f.non_send_sites);
        // Line 5 has both Rc and RefCell: two entries, same line.
        assert_eq!(f.non_send_sites.iter().filter(|(l, _)| *l == 5).count(), 2);
    }

    #[test]
    fn accessor_paths_are_not_sites_but_constructors_are() {
        let src = "fn f() -> bool {\n    FLAG.with(Cell::get)\n}\nfn g() -> Rc<u32> {\n    Rc::new(1)\n}\n";
        let f = facts("crates/serve/src/x.rs", src);
        let kinds: Vec<&str> = f.non_send_sites.iter().map(|(_, c)| c.as_str()).collect();
        assert!(
            !kinds.contains(&"Cell"),
            "Cell::get is a read, not a site: {:?}",
            f.non_send_sites
        );
        assert_eq!(
            kinds.iter().filter(|&&k| k == "Rc").count(),
            2,
            "the Rc type position and Rc::new both count: {:?}",
            f.non_send_sites
        );
    }

    #[test]
    fn lock_decls_found_in_fields_statics_and_lets() {
        let src = "use std::sync::{Mutex, RwLock};\npub struct S {\n    stats: Mutex<u32>,\n    map: std::sync::RwLock<Vec<u32>>,\n    shared: Arc<Mutex<u8>>,\n}\nstatic REGISTRY: Mutex<u32> = Mutex::new(0);\nfn local() {\n    let gate = Mutex::new(1);\n    drop(gate);\n}\n";
        let f = facts("crates/serve/src/state.rs", src);
        assert_eq!(f.lock_decls.get("stats").map(String::as_str), Some("state::stats"));
        assert_eq!(f.lock_decls.get("map").map(String::as_str), Some("state::map"));
        assert_eq!(f.lock_decls.get("shared").map(String::as_str), Some("state::shared"));
        assert_eq!(f.lock_decls.get("REGISTRY").map(String::as_str), Some("state::REGISTRY"));
        assert_eq!(f.lock_decls.get("gate").map(String::as_str), Some("state::gate"));
    }

    #[test]
    fn relaxed_atomic_bool_flagged_but_counters_ignored() {
        let src = "pub struct S {\n    ready: AtomicBool,\n    count: AtomicU64,\n}\nimpl S {\n    fn publish(&self) {\n        ready.store(true, Ordering::Relaxed);\n        count.fetch_add(1, Ordering::Relaxed);\n    }\n    fn check(&self) -> bool {\n        ready.load(Ordering::Acquire)\n    }\n}\n";
        let f = facts("crates/serve/src/flags.rs", src);
        assert_eq!(f.relaxed_sites.len(), 1, "{:?}", f.relaxed_sites);
        assert_eq!(f.relaxed_sites[0].1, "ready");
        assert_eq!(f.relaxed_sites[0].0, 7);
    }

    #[test]
    fn audit_escape_parsing_requires_reason() {
        let src = "// pup-audit: allow(non-send): telemetry buffers are per-thread by design\nfn a() {}\n// pup-audit: allow(non-send)\nfn b() {}\n// pup-audit: allow(non-send):\nfn c() {}\n";
        let f = facts("crates/obs/src/lib.rs", src);
        assert_eq!(f.escapes.len(), 3);
        assert!(f.escapes[0].2, "reason present");
        assert!(!f.escapes[1].2, "no colon, no reason");
        assert!(!f.escapes[2].2, "colon but empty reason");
    }

    #[test]
    fn events_track_acquisitions_and_guard_liveness() {
        let src = "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn both(&self) {\n        let ga = self.a.lock();\n        self.b.lock();\n    }\n}\n";
        let f = facts("crates/serve/src/pair.rs", src);
        let both = f.fns.iter().find(|f| f.name == "both").expect("fn");
        let acquires: Vec<&Event> =
            both.events.iter().filter(|e| matches!(e, Event::Acquire { .. })).collect();
        assert_eq!(acquires.len(), 2, "{:?}", both.events);
        // The let-bound guard on `a` outlives the statement acquiring `b`.
        let Event::Acquire { lock, until, .. } = acquires[0] else { unreachable!() };
        assert_eq!(*lock, LockRef::Concrete("pair::a".to_string()));
        let Event::Acquire { offset: b_off, .. } = acquires[1] else { unreachable!() };
        assert!(until > b_off, "let-bound guard must span the next acquisition");
    }

    #[test]
    fn param_locks_and_guard_returns_recognised() {
        let src = "fn locked(m: &Mutex<u32>) -> MutexGuard<'_, u32> {\n    m.lock().unwrap_or_else(PoisonError::into_inner)\n}\n";
        let f = facts("crates/serve/src/util.rs", src);
        let locked = &f.fns[0];
        assert_eq!(locked.params, vec![("m".to_string(), true)]);
        assert!(locked.returns_guard);
        assert_eq!(
            locked.summary.iter().collect::<Vec<_>>(),
            vec![&LockRef::Param(0)],
            "the helper's summary is its parameter"
        );
    }

    #[test]
    fn arg_bases_resolve_field_chains() {
        let src = "pub struct S { stats: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        helper(&self.stats, 1);\n    }\n}\n";
        let f = facts("crates/serve/src/args.rs", src);
        let caller = f.fns.iter().find(|f| f.name == "f").expect("fn");
        let Some(Event::Call { name, args, .. }) =
            caller.events.iter().find(|e| matches!(e, Event::Call { .. }))
        else {
            panic!("no call event: {:?}", caller.events)
        };
        assert_eq!(name, "helper");
        assert_eq!(args[0], Some(LockRef::Concrete("args::stats".to_string())));
        assert_eq!(args[1], None);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
