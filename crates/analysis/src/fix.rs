//! Mechanical cleanup for `pup-analysis lint --fix`.
//!
//! The only fix the driver applies is deleting **stale** allow escapes:
//! `// pup-lint: allow(<rule>)` comments whose names no longer suppress
//! any finding (including names of rules that do not exist), plus
//! `// pup-audit: allow(<kind>)` escapes the concurrency and hot-path
//! audits report as stale. Removing a stale escape can never introduce a
//! violation — the escape was suppressing nothing — so the pass is safe
//! to run unattended and is idempotent: the second run finds nothing
//! left to delete.
//!
//! Ordering matters: the lint pass rewrites files first, then both
//! audits run against the updated tree so the stale lines they report
//! match what is on disk.
//!
//! Edits rewrite files in place, so the CLI refuses to run on a dirty git
//! tree unless `--force` is given (a non-git tree is treated as consent).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

use crate::syntax::SourceFile;
use crate::{concurrency, hotpath, lint};

/// What a workspace fix pass did.
#[derive(Debug, Default)]
pub struct FixOutcome {
    /// Files rewritten.
    pub files_changed: Vec<PathBuf>,
    /// Individual stale escape names removed.
    pub escapes_removed: usize,
}

/// Whether `root` is a git work tree with uncommitted changes. `None`
/// when `git` is unavailable or `root` is not a repository — the caller
/// treats that as "nothing to protect".
pub fn working_tree_dirty(root: &Path) -> Option<bool> {
    let out =
        Command::new("git").arg("-C").arg(root).args(["status", "--porcelain"]).output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(!out.stdout.iter().all(|&b| b.is_ascii_whitespace()))
}

/// Removes stale allow escapes from every workspace file. Returns what
/// changed; files without stale escapes are left untouched.
pub fn fix_workspace(root: &Path) -> io::Result<FixOutcome> {
    let mut outcome = FixOutcome::default();
    for file in lint::workspace_rs_files(root)? {
        let source = fs::read_to_string(&file)?;
        if let Some((fixed, removed)) = fix_source(&file, &source) {
            write_atomic(&file, &fixed)?;
            outcome.files_changed.push(file);
            outcome.escapes_removed += removed;
        }
    }
    fix_audit_escapes(root, &mut outcome)?;
    Ok(outcome)
}

/// Deletes `// pup-audit: allow(…)` escapes that the concurrency and
/// hot-path audits report as stale. Runs after the lint pass so the line
/// numbers in the audit reports match the tree on disk.
fn fix_audit_escapes(root: &Path, outcome: &mut FixOutcome) -> io::Result<()> {
    let mut stale: BTreeMap<PathBuf, BTreeSet<(usize, String)>> = BTreeMap::new();
    for (file, line, kind) in concurrency::audit_workspace(root)?.stale_escapes {
        stale.entry(file).or_default().insert((line, kind));
    }
    for s in hotpath::audit_workspace(root)?.stale_escapes {
        stale.entry(s.file).or_default().insert((s.line, s.kind));
    }
    for (file, lines) in stale {
        let source = fs::read_to_string(&file)?;
        if let Some((fixed, removed)) = delete_audit_escapes(&source, &lines) {
            write_atomic(&file, &fixed)?;
            if !outcome.files_changed.contains(&file) {
                outcome.files_changed.push(file);
            }
            outcome.escapes_removed += removed;
        }
    }
    Ok(())
}

/// Computes the text of `source` with the audit escape comments at the
/// given `(line, kind)` positions deleted, or `None` when none match.
pub fn delete_audit_escapes(
    source: &str,
    stale: &BTreeSet<(usize, String)>,
) -> Option<(String, usize)> {
    let file = SourceFile::parse(source);
    let mut edits: Vec<(usize, usize, String)> = Vec::new();
    for esc in hotpath::escape_comments(&file) {
        if stale.iter().any(|(line, kind)| *line == esc.line && *kind == esc.kind) {
            edits.push(comment_deletion(source, esc.span));
        }
    }
    if edits.is_empty() {
        return None;
    }
    let removed = edits.len();
    edits.sort_by_key(|&(s, _, _)| s);
    let mut fixed = source.to_string();
    for (start, end, replacement) in edits.into_iter().rev() {
        fixed.replace_range(start..end, &replacement);
    }
    Some((fixed, removed))
}

fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("rs.pup-fix-tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

/// Computes the fixed text for one file, or `None` when there is nothing
/// to fix. Returns the new source and the number of escape names removed.
pub fn fix_source(path: &Path, source: &str) -> Option<(String, usize)> {
    let analysis = lint::analyze_source(path, source, true);
    // Collect replacements as (start, end, replacement), non-overlapping,
    // then apply back-to-front so earlier offsets stay valid.
    let mut edits: Vec<(usize, usize, String)> = Vec::new();
    let mut removed = 0usize;
    for (site, live) in analysis.allows.iter().zip(&analysis.live) {
        let stale: Vec<&String> =
            site.names.iter().zip(live).filter_map(|(name, &l)| (!l).then_some(name)).collect();
        if stale.is_empty() {
            continue;
        }
        removed += stale.len();
        if stale.len() == site.names.len() {
            edits.push(comment_deletion(source, site.span));
        } else {
            // Keep the live names: rewrite just the name list.
            let live_names: Vec<&str> = site
                .names
                .iter()
                .zip(live)
                .filter_map(|(name, &l)| l.then_some(name.as_str()))
                .collect();
            let comment = &source[site.span.0..site.span.1];
            let marker = "allow(";
            let open = comment.find(marker).map(|a| a + marker.len())?;
            let close = comment[open..].find(')').map(|c| open + c)?;
            edits.push((site.span.0 + open, site.span.0 + close, live_names.join(", ")));
        }
    }
    if edits.is_empty() {
        return None;
    }
    edits.sort_by_key(|&(s, _, _)| s);
    let mut fixed = source.to_string();
    for (start, end, replacement) in edits.into_iter().rev() {
        fixed.replace_range(start..end, &replacement);
    }
    Some((fixed, removed))
}

/// The deletion span for a fully stale escape comment: the whole line when
/// the comment is alone on it (leading whitespace only and nothing after),
/// otherwise the comment plus the spaces separating it from the code.
fn comment_deletion(source: &str, span: (usize, usize)) -> (usize, usize, String) {
    let (start, end) = span;
    let line_start = source[..start].rfind('\n').map_or(0, |p| p + 1);
    let line_end = source[end..].find('\n').map_or(source.len(), |p| end + p + 1);
    let alone = source[line_start..start].chars().all(|c| c == ' ' || c == '\t')
        && source[end..line_end].trim().is_empty();
    if alone {
        (line_start, line_end, String::new())
    } else {
        let mut s = start;
        while s > line_start && matches!(source.as_bytes()[s - 1], b' ' | b'\t') {
            s -= 1;
        }
        (s, end, String::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_escape_on_its_own_line_is_deleted_whole() {
        let src = "fn f() -> u32 {\n    // pup-lint: allow(unwrap-in-lib)\n    42\n}\n";
        let (fixed, removed) = fix_source(Path::new("lib.rs"), src).expect("stale escape");
        assert_eq!(fixed, "fn f() -> u32 {\n    42\n}\n");
        assert_eq!(removed, 1);
    }

    #[test]
    fn stale_trailing_escape_keeps_the_code() {
        let src = "fn f() -> u32 {\n    42 // pup-lint: allow(float-eq)\n}\n";
        let (fixed, removed) = fix_source(Path::new("lib.rs"), src).expect("stale escape");
        assert_eq!(fixed, "fn f() -> u32 {\n    42\n}\n");
        assert_eq!(removed, 1);
    }

    #[test]
    fn live_escapes_are_untouched() {
        let src = "// pup-lint: allow(unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(fix_source(Path::new("lib.rs"), src).is_none());
    }

    #[test]
    fn partially_stale_escape_keeps_live_names() {
        let src = "// pup-lint: allow(unwrap-in-lib, clone-in-loop)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (fixed, removed) = fix_source(Path::new("lib.rs"), src).expect("half stale");
        assert_eq!(
            fixed,
            "// pup-lint: allow(unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n"
        );
        assert_eq!(removed, 1);
    }

    #[test]
    fn unknown_rule_names_are_removed() {
        let src = "fn f() {\n    // pup-lint: allow(no-such-rule)\n    let _x = 1;\n}\n";
        let (fixed, removed) = fix_source(Path::new("lib.rs"), src).expect("unknown name");
        assert_eq!(fixed, "fn f() {\n    let _x = 1;\n}\n");
        assert_eq!(removed, 1);
    }

    #[test]
    fn fix_is_idempotent() {
        let src = "fn f() -> u32 {\n    // pup-lint: allow(unwrap-in-lib)\n    42 // pup-lint: allow(float-eq)\n}\n";
        let (once, _) = fix_source(Path::new("lib.rs"), src).expect("stale escapes");
        assert!(fix_source(Path::new("lib.rs"), &once).is_none(), "second pass must be a no-op");
    }

    #[test]
    fn stale_audit_escape_is_deleted_by_line_and_kind() {
        let src =
            "fn f() {\n    // pup-audit: allow(hotpath-panic): old reason\n    let _x = 1;\n}\n";
        let stale: BTreeSet<(usize, String)> =
            [(2, "hotpath-panic".to_string())].into_iter().collect();
        let (fixed, removed) = delete_audit_escapes(src, &stale).expect("stale escape");
        assert_eq!(fixed, "fn f() {\n    let _x = 1;\n}\n");
        assert_eq!(removed, 1);
    }

    #[test]
    fn live_audit_escapes_with_other_kinds_survive() {
        let src = "fn f() {\n    // pup-audit: allow(non-send): still live\n    let _x = 1;\n}\n";
        let stale: BTreeSet<(usize, String)> =
            [(2, "hotpath-panic".to_string())].into_iter().collect();
        assert!(delete_audit_escapes(src, &stale).is_none());
    }

    #[test]
    fn trailing_audit_escape_keeps_the_code() {
        let src = "fn f() {\n    let _x = 1; // pup-audit: allow(hotpath-panic): gone\n}\n";
        let stale: BTreeSet<(usize, String)> =
            [(2, "hotpath-panic".to_string())].into_iter().collect();
        let (fixed, _) = delete_audit_escapes(src, &stale).expect("stale escape");
        assert_eq!(fixed, "fn f() {\n    let _x = 1;\n}\n");
    }

    #[test]
    fn audit_escape_deletion_is_idempotent() {
        let src = "fn f() {\n    // pup-audit: allow(hotpath-panic): old\n    let _x = 1;\n}\n";
        let stale: BTreeSet<(usize, String)> =
            [(2, "hotpath-panic".to_string())].into_iter().collect();
        let (once, _) = delete_audit_escapes(src, &stale).expect("stale escape");
        assert!(delete_audit_escapes(&once, &stale).is_none(), "second pass must be a no-op");
    }

    #[test]
    fn fixed_file_lints_clean_in_strict_mode() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // pup-lint: allow(unwrap-in-lib, clone-in-loop)\n    x.unwrap()\n}\n";
        let (fixed, _) = fix_source(Path::new("lib.rs"), src).expect("stale name");
        let diags = lint::lint_source_with(Path::new("lib.rs"), &fixed, true);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
