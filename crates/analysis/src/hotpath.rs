//! Hot-path certifier: panic-reachability and allocation/lock budgets over
//! the [`crate::callgraph`] call graph.
//!
//! A fn annotated `// pup-hot: <label>` is a **hot root** — an entry point
//! whose transitive callees form a serving- or training-critical inner
//! loop. This module runs two reachability-fixpoint passes over the graph:
//!
//! 1. **Panic-reachability.** Per-fn summaries record every syntactic
//!    panic source in the body: `panic!`-family macros (`panic!`,
//!    `unreachable!`, `todo!`, `unimplemented!`), `assert!`-family macros
//!    (`debug_assert*` is *not* a source — it compiles out of release
//!    builds), `.unwrap()` / `.expect(…)`, index/range expressions
//!    `x[…]`, and integer `/` `%` (with float-arithmetic excluded by
//!    heuristic). Facts propagate caller-ward: a root certifies only when
//!    zero unescaped sources are reachable from it. A legitimate site is
//!    acknowledged with a mandatory-reason escape on or directly above it:
//!    `// pup-audit: allow(hotpath-panic): <why this cannot fire>`.
//! 2. **Allocation/lock budget.** The same reachable set is scanned for
//!    heap allocation (`Vec::new` / `Vec::with_capacity` inside loop
//!    bodies, `.clone()`, `.to_vec()`, `.collect()`, `format!`, `vec!`,
//!    `Box::new`) and lock acquisition (`.lock()` / `.read()` /
//!    `.write()`). Budgets are not zero — they are **ratcheted**: current
//!    per-root counts live in `results/hotpath_ratchet.json`; growth fails
//!    the audit, shrinkage prompts `--update-ratchet`, so perf refactors
//!    can only drive the numbers down.
//!
//! Soundness caveats (see DESIGN.md §13): calls through fn-pointer /
//! closure *values* are invisible to the graph, and bare-name fan-out can
//! add edges no execution takes. The first is why closures are attributed
//! to their enclosing fn (a closure defined on the hot path is audited
//! there, wherever it is later invoked from); the second only ever makes
//! the certifier stricter.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::lex::TokenKind;
use crate::lint::workspace_rs_files;
use crate::syntax::{in_any, SourceFile};

/// Repo-relative path of the committed hot-path budget ratchet.
pub const RATCHET_PATH: &str = "results/hotpath_ratchet.json";

/// The escape kind this audit owns.
pub const ESCAPE_KIND: &str = "hotpath-panic";

/// Which pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// An unescaped panic source reachable from a hot root.
    PanicReach,
    /// A malformed or stale `// pup-audit: allow(hotpath-panic)` escape.
    Escape,
    /// Budget ratchet violations and bookkeeping prompts.
    Ratchet,
    /// Workspace-shape problems (e.g. no hot roots annotated at all).
    Roots,
}

impl Pass {
    /// Stable machine name.
    pub fn name(self) -> &'static str {
        match self {
            Pass::PanicReach => "hotpath-panic",
            Pass::Escape => "escape",
            Pass::Ratchet => "ratchet",
            Pass::Roots => "roots",
        }
    }
}

/// One certifier finding.
#[derive(Debug)]
pub struct Finding {
    /// File the finding is anchored to.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Producing pass.
    pub pass: Pass,
    /// Human-readable message (includes the call chain for panic findings).
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.pass.name(), self.message)
    }
}

/// Per-root budget summary.
#[derive(Debug)]
pub struct RootReport {
    /// The `// pup-hot:` label.
    pub label: String,
    /// Qualified name of the root fn.
    pub qual: String,
    /// Number of workspace fns reachable from the root (root included).
    pub reachable: usize,
    /// Allocation sites reachable from the root.
    pub allocs: usize,
    /// Lock-acquisition sites reachable from the root.
    pub locks: usize,
}

/// One allocation/lock site on some root's hot path (for the worklist
/// print and the JSON report). A site reachable from several roots is
/// attributed to the first (label-sorted) root that reaches it.
#[derive(Debug)]
pub struct SiteItem {
    /// File of the site.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// What allocates or locks (`.clone()`, `Vec::new in loop`, …).
    pub construct: String,
    /// Label of the root this site is attributed to.
    pub root: String,
}

/// A stale escape comment the fixer may delete: file, 1-based line, kind.
#[derive(Debug, Clone)]
pub struct StaleEscape {
    /// File containing the comment.
    pub file: PathBuf,
    /// 1-based line of the marker.
    pub line: usize,
    /// The escape kind named in `allow(…)`.
    pub kind: String,
}

/// The full certifier report.
#[derive(Debug)]
pub struct AuditReport {
    /// All findings, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Per-root budgets, sorted by label.
    pub roots: Vec<RootReport>,
    /// Alloc/lock worklist, sorted by (file, line).
    pub sites: Vec<SiteItem>,
    /// The committed ratchet, if present: label -> (allocs, locks).
    pub ratchet: Option<BTreeMap<String, (usize, usize)>>,
    /// Number of files scanned.
    pub files_checked: usize,
    /// Number of fn nodes in the call graph.
    pub fn_count: usize,
    /// Stale `allow(hotpath-panic)` escapes, for `lint --fix`.
    pub stale_escapes: Vec<StaleEscape>,
}

/// One audit escape comment found in a file (any kind).
#[derive(Debug)]
pub struct EscapeComment {
    /// Byte span of the whole comment token.
    pub span: (usize, usize),
    /// 1-based line of the marker.
    pub line: usize,
    /// The kind inside `allow(…)`.
    pub kind: String,
    /// Whether a non-empty `: <reason>` follows.
    pub has_reason: bool,
}

/// Parses every `// pup-audit: allow(<kind>)[: reason]` comment in a file.
/// Shared with the fixer, which needs the comment's byte span to delete it.
pub fn escape_comments(file: &SourceFile<'_>) -> Vec<EscapeComment> {
    const MARKER: &str = "pup-audit: allow(";
    let mut out = Vec::new();
    for t in &file.tokens {
        let plain = matches!(
            t.kind,
            TokenKind::LineComment { doc: false } | TokenKind::BlockComment { doc: false }
        );
        if !plain {
            continue;
        }
        let text = t.text(file.src);
        let Some(at) = text.find(MARKER) else { continue };
        let rest = &text[at + MARKER.len()..];
        let Some(close) = rest.find(')') else { continue };
        let after = rest[close + 1..].trim_start();
        out.push(EscapeComment {
            span: (t.start, t.end),
            line: file.line_of(t.start + at),
            kind: rest[..close].trim().to_string(),
            has_reason: after.strip_prefix(':').map(str::trim).is_some_and(|r| !r.is_empty()),
        });
    }
    out
}

/// A local panic/alloc/lock site before fn attribution.
struct RawSite {
    offset: usize,
    line: usize,
    construct: String,
}

/// Per-file local facts: panic sources, alloc/lock sites, escapes.
struct FileSites {
    panics: Vec<RawSite>,
    allocs: Vec<RawSite>,
    locks: Vec<RawSite>,
    escapes: Vec<EscapeComment>,
}

/// Macros that unconditionally may panic. `debug_assert*` is absent on
/// purpose: it compiles out of release builds, which is what serves.
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// Idents that must not precede a `[` for it to be an index expression.
const NON_INDEX_KEYWORDS: &[&str] =
    &["let", "in", "return", "else", "match", "if", "while", "mut", "ref", "move", "box", "as"];

/// Extracts all local sites from one parsed file (non-test code only).
fn extract_sites(file: &SourceFile<'_>) -> FileSites {
    let test_spans = file.test_spans();
    let loop_spans = file.loop_body_spans();
    let mut sites = FileSites {
        panics: Vec::new(),
        allocs: Vec::new(),
        locks: Vec::new(),
        escapes: Vec::new(),
    };
    sites.escapes = escape_comments(file);

    for p in 0..file.code.len() {
        let ti = file.code[p];
        let at = file.tokens[ti].start;
        if in_any(&test_spans, at) {
            continue;
        }
        let panic_site = |construct: String, sites: &mut FileSites| {
            sites.panics.push(RawSite { offset: at, line: file.line_of(at), construct });
        };
        match file.tokens[ti].kind {
            TokenKind::Ident => {
                let word = file.text(ti);
                let bang = file.code.get(p + 1).is_some_and(|&n| file.is_punct(n, b'!'));
                if bang && PANIC_MACROS.contains(&word) {
                    panic_site(format!("{word}!"), &mut sites);
                } else if bang && (word == "format" || word == "vec") {
                    sites.allocs.push(RawSite {
                        offset: at,
                        line: file.line_of(at),
                        construct: format!("{word}!"),
                    });
                }
            }
            TokenKind::Punct if file.is_punct(ti, b'.') => {
                let Some(&name) = file.code.get(p + 1) else { continue };
                if file.tokens[name].kind != TokenKind::Ident {
                    continue;
                }
                match file.text(name) {
                    "unwrap" if file.match_seq(p, &[".", "unwrap", "(", ")"]) => {
                        panic_site(".unwrap()".to_string(), &mut sites);
                    }
                    "expect" if file.match_seq(p, &[".", "expect", "("]) => {
                        panic_site(".expect(…)".to_string(), &mut sites);
                    }
                    w @ ("clone" | "to_vec" | "collect")
                        if file
                            .code
                            .get(p + 2)
                            .is_some_and(|&n| file.is_punct(n, b'(') || file.is_punct(n, b':')) =>
                    {
                        sites.allocs.push(RawSite {
                            offset: at,
                            line: file.line_of(at),
                            construct: format!(".{w}()"),
                        });
                    }
                    w @ ("lock" | "read" | "write")
                        if file.code.get(p + 2).is_some_and(|&n| file.is_punct(n, b'(')) =>
                    {
                        sites.locks.push(RawSite {
                            offset: at,
                            line: file.line_of(at),
                            construct: format!(".{w}()"),
                        });
                    }
                    _ => {}
                }
            }
            TokenKind::Punct if file.is_punct(ti, b'[') && is_index_expr(file, p) => {
                panic_site("index `[…]`".to_string(), &mut sites);
            }
            TokenKind::Punct if file.is_punct(ti, b'/') || file.is_punct(ti, b'%') => {
                let op = if file.is_punct(ti, b'/') { '/' } else { '%' };
                if is_integer_div(file, p, at) {
                    panic_site(format!("integer `{op}`"), &mut sites);
                }
            }
            _ => {}
        }
    }

    // `Vec::new(` / `Vec::with_capacity(` count only inside loop bodies
    // (a one-time buffer is fine; per-iteration allocation is the smell);
    // `Box::new(` counts anywhere.
    for (head, member, loops_only) in
        [("Vec", "new", true), ("Vec", "with_capacity", true), ("Box", "new", false)]
    {
        for p in file.find_seq(&[head, ":", ":", member, "("]) {
            let at = file.tokens[file.code[p]].start;
            if in_any(&test_spans, at) {
                continue;
            }
            if loops_only && !in_any(&loop_spans, at) {
                continue;
            }
            let construct = if loops_only {
                format!("{head}::{member} in loop")
            } else {
                format!("{head}::{member}")
            };
            sites.allocs.push(RawSite { offset: at, line: file.line_of(at), construct });
        }
    }
    sites
}

/// Whether the `[` at code position `p` starts an index (or range-index)
/// expression: it must directly follow a value — an ident that is not a
/// keyword, a closing `)` / `]`, or a string literal. Attributes (`#[`),
/// macro brackets (`name![`), array types/literals and slice patterns all
/// fail that test.
fn is_index_expr(file: &SourceFile<'_>, p: usize) -> bool {
    let Some(prev) = p.checked_sub(1).map(|q| file.code[q]) else { return false };
    match file.tokens[prev].kind {
        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&file.text(prev)),
        TokenKind::Punct => file.is_punct(prev, b')') || file.is_punct(prev, b']'),
        TokenKind::Str | TokenKind::RawStr => true,
        _ => false,
    }
}

/// Whether the `/` or `%` at code position `p` (byte `at`) is integer
/// arithmetic that may panic (divide by zero / overflow). Float
/// arithmetic is excluded by heuristic: a float literal, an `f32`/`f64`
/// ident, or a float-only method (`sqrt`, `exp`, `ln`, `powi`, `powf`)
/// anywhere in the innermost enclosing fn body marks the whole fn floaty
/// — local float bindings (`let m_hat = mi / bc1`) carry no per-statement
/// type marker, so per-statement scanning is not enough. The cost is a
/// missed integer division inside float-heavy fns; the heuristic trades
/// that for not drowning the report in float false positives. A nonzero
/// integer literal divisor cannot divide by zero and is skipped too.
fn is_integer_div(file: &SourceFile<'_>, p: usize, at: usize) -> bool {
    // `/=`? The lexer never glues puncts, so compound assignment shows up
    // as `/` followed by `=` — still a division, still audited.
    let Some(&next) = file.code.get(p + 1) else { return false };
    match file.tokens[next].kind {
        TokenKind::Float => return false,
        TokenKind::Int => {
            let text = file.text(next);
            let nonzero = text.trim_start_matches('0').chars().any(|c| c.is_ascii_hexdigit());
            if nonzero {
                return false;
            }
        }
        _ => {}
    }
    if let Some(prev) = p.checked_sub(1).map(|q| file.code[q]) {
        if file.tokens[prev].kind == TokenKind::Float {
            return false;
        }
        // A `/` directly after `(`/`,`/`=` etc. is not a binary operator
        // position we understand; be quiet rather than noisy.
        if file.tokens[prev].kind == TokenKind::Punct
            && !(file.is_punct(prev, b')') || file.is_punct(prev, b']'))
        {
            return false;
        }
    }
    // Enclosing-fn float heuristic: innermost fn body containing `at`.
    let span = file
        .fn_defs()
        .iter()
        .filter_map(|d| d.body)
        .map(|(open, close)| (file.tokens[open].start, file.tokens[close].end))
        .filter(|&(lo, hi)| lo <= at && at < hi)
        .min_by_key(|&(lo, hi)| hi - lo);
    if let Some((lo, hi)) = span {
        let floaty = file.code.iter().any(|&ti| {
            let t = &file.tokens[ti];
            if t.start < lo || t.start >= hi {
                return false;
            }
            t.kind == TokenKind::Float
                || (t.kind == TokenKind::Ident
                    && matches!(
                        file.text(ti),
                        "f32" | "f64" | "sqrt" | "exp" | "ln" | "powi" | "powf"
                    ))
        });
        if floaty {
            return false;
        }
    }
    true
}

/// Runs the certifier over `<root>/crates/*/src`.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let files = workspace_rs_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let text = fs::read_to_string(&file)?;
        sources.push((file, text));
    }
    Ok(audit_sources(root, &sources))
}

/// A panic/alloc/lock site attributed to a fn node.
struct FnSites {
    /// Unescaped panic sources: (line, construct).
    panics: Vec<(usize, String)>,
    /// Alloc sites: (offset, line, construct).
    allocs: Vec<(usize, usize, String)>,
    /// Lock sites: (offset, line, construct).
    locks: Vec<(usize, usize, String)>,
}

/// Runs the certifier over in-memory sources. `root` is only used to read
/// the committed ratchet; pass a directory without one to skip the check.
pub fn audit_sources(root: &Path, sources: &[(PathBuf, String)]) -> AuditReport {
    let mut graph = CallGraph::build_from_sources(sources);
    graph.attach_crate_deps(root);
    let mut report = AuditReport {
        findings: Vec::new(),
        roots: Vec::new(),
        sites: Vec::new(),
        ratchet: read_ratchet(root),
        files_checked: sources.len(),
        fn_count: graph.fns.len(),
        stale_escapes: Vec::new(),
    };

    // Group fn indices by file for site attribution.
    let mut fns_by_file: BTreeMap<&Path, Vec<usize>> = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        fns_by_file.entry(f.file.as_path()).or_default().push(i);
    }

    // Extract local sites per file, attribute each to the innermost
    // enclosing fn, and apply escapes to panic sites.
    let mut per_fn: Vec<FnSites> = (0..graph.fns.len())
        .map(|_| FnSites { panics: Vec::new(), allocs: Vec::new(), locks: Vec::new() })
        .collect();
    // Each escape remembers the owner fns of the sites it suppressed, so
    // hygiene can check the suppressed code is actually hot.
    let mut escapes: Vec<(PathBuf, EscapeComment, Vec<usize>)> = Vec::new();
    for (path, text) in sources {
        let file = SourceFile::parse(text);
        let sites = extract_sites(&file);
        let owners = fns_by_file.get(path.as_path()).map_or(&[][..], |v| &v[..]);
        let owner_of = |offset: usize| -> Option<usize> {
            owners
                .iter()
                .copied()
                .filter_map(|i| graph.fns[i].body.map(|span| (i, span)))
                .filter(|&(_, span)| offset > span.0 && offset < span.1)
                .min_by_key(|&(_, span)| span.1 - span.0)
                .map(|(i, _)| i)
        };
        let escape_base = escapes.len();
        for esc in sites.escapes {
            if esc.kind == ESCAPE_KIND {
                escapes.push((path.to_path_buf(), esc, Vec::new()));
            }
        }
        for s in sites.panics {
            let Some(owner) = owner_of(s.offset) else { continue };
            let mut suppressed = false;
            for (_, esc, suppressed_in) in &mut escapes[escape_base..] {
                if esc.has_reason && (esc.line == s.line || esc.line + 1 == s.line) {
                    suppressed_in.push(owner);
                    suppressed = true;
                }
            }
            if !suppressed {
                per_fn[owner].panics.push((s.line, s.construct));
            }
        }
        for s in sites.allocs {
            if let Some(owner) = owner_of(s.offset) {
                per_fn[owner].allocs.push((s.offset, s.line, s.construct));
            }
        }
        for s in sites.locks {
            if let Some(owner) = owner_of(s.offset) {
                per_fn[owner].locks.push((s.offset, s.line, s.construct));
            }
        }
    }

    // Per-root reachability fixpoint: BFS with parent pointers so every
    // finding names its call chain.
    let roots = graph.hot_roots();
    if roots.is_empty() {
        report.findings.push(Finding {
            file: PathBuf::from("crates"),
            line: 1,
            pass: Pass::Roots,
            message: "no `// pup-hot: <label>` roots annotated anywhere in the workspace; \
                      the hot-path certifier has nothing to certify"
                .to_string(),
        });
    }
    let mut hot_reach: Vec<bool> = vec![false; graph.fns.len()];
    let mut claimed_sites: BTreeSet<(PathBuf, usize)> = BTreeSet::new();
    for (label, start) in &roots {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(*start);
        queue.push_back(*start);
        while let Some(i) = queue.pop_front() {
            for call in &graph.fns[i].calls {
                for j in graph.callees(i, call) {
                    if seen.insert(j) {
                        parent.insert(j, i);
                        queue.push_back(j);
                    }
                }
            }
        }
        let chain = |mut i: usize| -> String {
            let mut names = vec![graph.fns[i].qual.as_str()];
            while let Some(&p) = parent.get(&i) {
                names.push(graph.fns[p].qual.as_str());
                i = p;
            }
            names.reverse();
            names.join(" -> ")
        };
        let mut allocs = 0usize;
        let mut locks = 0usize;
        for &i in &seen {
            hot_reach[i] = true;
            let f = &graph.fns[i];
            for (line, construct) in &per_fn[i].panics {
                if claimed_sites.insert((f.file.to_path_buf(), *line)) {
                    report.findings.push(Finding {
                        file: f.file.to_path_buf(),
                        line: *line,
                        pass: Pass::PanicReach,
                        message: format!(
                            "{construct} reachable from hot root `{label}` via {}; make it \
                             infallible or annotate \
                             `// pup-audit: allow(hotpath-panic): <why this cannot fire>`",
                            chain(i)
                        ),
                    });
                }
            }
            for (offset, line, construct) in &per_fn[i].allocs {
                if claimed_sites.insert((f.file.to_path_buf(), *offset)) {
                    allocs += 1;
                    report.sites.push(SiteItem {
                        file: f.file.to_path_buf(),
                        line: *line,
                        construct: construct.to_string(),
                        root: label.to_string(),
                    });
                }
            }
            for (offset, line, construct) in &per_fn[i].locks {
                if claimed_sites.insert((f.file.to_path_buf(), *offset)) {
                    locks += 1;
                    report.sites.push(SiteItem {
                        file: f.file.to_path_buf(),
                        line: *line,
                        construct: format!("lock {construct}"),
                        root: label.to_string(),
                    });
                }
            }
        }
        report.roots.push(RootReport {
            label: label.to_string(),
            qual: graph.fns[*start].qual.to_string(),
            reachable: seen.len(),
            allocs,
            locks,
        });
    }

    // Escape hygiene: every `allow(hotpath-panic)` must carry a reason and
    // suppress a site inside a hot-reachable fn; anything else is stale.
    // (Unknown kinds are audit-concurrency's to report — it owns the
    // shared registry.)
    for (path, esc, suppressed_in) in &escapes {
        let on_hot_path = suppressed_in.iter().any(|&i| hot_reach[i]);
        let message = if !esc.has_reason {
            format!(
                "audit escape `allow({ESCAPE_KIND})` has no reason; write \
                 `// pup-audit: allow({ESCAPE_KIND}): <why this cannot fire>`"
            )
        } else if !on_hot_path {
            report.stale_escapes.push(StaleEscape {
                file: path.to_path_buf(),
                line: esc.line,
                kind: esc.kind.to_string(),
            });
            format!("stale audit escape: `allow({ESCAPE_KIND})` suppresses nothing; delete it")
        } else {
            continue;
        };
        report.findings.push(Finding {
            file: path.to_path_buf(),
            line: esc.line,
            pass: Pass::Escape,
            message,
        });
    }

    ratchet_pass(&mut report);
    report.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Compares per-root budgets against the committed ratchet.
fn ratchet_pass(report: &mut AuditReport) {
    let path = PathBuf::from(RATCHET_PATH);
    let Some(ratchet) = &report.ratchet else {
        if report.roots.iter().any(|r| r.allocs > 0 || r.locks > 0) {
            report.findings.push(Finding {
                file: path,
                line: 1,
                pass: Pass::Ratchet,
                message: "no hot-path ratchet recorded but hot roots have alloc/lock \
                          budgets; run `audit-hotpath --update-ratchet` and commit the result"
                    .to_string(),
            });
        }
        return;
    };
    for r in &report.roots {
        match ratchet.get(&r.label) {
            None => report.findings.push(Finding {
                file: path.to_path_buf(),
                line: 1,
                pass: Pass::Ratchet,
                message: format!(
                    "hot root `{}` has no recorded budget; run \
                     `audit-hotpath --update-ratchet` and commit the result",
                    r.label
                ),
            }),
            Some(&(allocs, locks)) => {
                for (metric, now, rec) in [("alloc", r.allocs, allocs), ("lock", r.locks, locks)] {
                    if now > rec {
                        report.findings.push(Finding {
                            file: path.to_path_buf(),
                            line: 1,
                            pass: Pass::Ratchet,
                            message: format!(
                                "hot root `{}` {metric} budget grew: {now} site(s) vs \
                                 ratchet {rec}; hot loops only get leaner — remove the \
                                 new {metric} sites instead",
                                r.label
                            ),
                        });
                    } else if now < rec {
                        report.findings.push(Finding {
                            file: path.to_path_buf(),
                            line: 1,
                            pass: Pass::Ratchet,
                            message: format!(
                                "hot root `{}` {metric} budget shrank: {now} site(s) vs \
                                 ratchet {rec}; lock in the progress with \
                                 `audit-hotpath --update-ratchet`",
                                r.label
                            ),
                        });
                    }
                }
            }
        }
    }
    for label in ratchet.keys() {
        if !report.roots.iter().any(|r| &r.label == label) {
            report.findings.push(Finding {
                file: path.to_path_buf(),
                line: 1,
                pass: Pass::Ratchet,
                message: format!(
                    "ratchet records root `{label}` but no fn is annotated \
                     `// pup-hot: {label}`; run `audit-hotpath --update-ratchet`"
                ),
            });
        }
    }
}

/// Rewrites the committed ratchet to the current per-root budgets.
pub fn update_ratchet(root: &Path, roots: &[RootReport]) -> io::Result<()> {
    let path = root.join(RATCHET_PATH);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut body = String::from("{\n  \"schema\": \"pup-hotpath-ratchet/1\",\n  \"roots\": {\n");
    let mut sorted: Vec<&RootReport> = roots.iter().collect();
    sorted.sort_by(|a, b| a.label.cmp(&b.label));
    for (i, r) in sorted.iter().enumerate() {
        let comma = if i + 1 < sorted.len() { "," } else { "" };
        body.push_str(&format!(
            "    \"{}\": {{\"allocs\": {}, \"locks\": {}}}{comma}\n",
            r.label, r.allocs, r.locks
        ));
    }
    body.push_str("  }\n}\n");
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, body)?;
    fs::rename(&tmp, path)
}

/// Reads the committed ratchet: label -> (allocs, locks).
pub fn read_ratchet(root: &Path) -> Option<BTreeMap<String, (usize, usize)>> {
    let text = fs::read_to_string(root.join(RATCHET_PATH)).ok()?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('"') || !line.contains("\"allocs\"") {
            continue;
        }
        let mut quotes = line.split('"');
        quotes.next()?; // before the first quote
        let label = quotes.next()?.to_string();
        let allocs = field_value(line, "\"allocs\"")?;
        let locks = field_value(line, "\"locks\"")?;
        out.insert(label, (allocs, locks));
    }
    Some(out)
}

/// Parses the integer after `"field":` in `line`.
fn field_value(line: &str, field: &str) -> Option<usize> {
    let at = line.find(field)?;
    let rest = &line[at + field.len()..];
    let colon = rest.find(':')?;
    let digits: String =
        rest[colon + 1..].trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
