//! Static passes over the tape IR exported by `pup_tensor::tape`.
//!
//! The models in this workspace are exactly the kind of architecture where
//! a wiring bug trains without crashing and just scores worse: PUP's
//! two-branch decoder slices embeddings column-wise, NGCF sums three
//! embedding tables, DeepFM shares field embeddings between two components.
//! A price embedding that never reaches the loss, a slice that aliases the
//! wrong columns — nothing panics, the metrics quietly degrade.
//!
//! This module audits a recorded forward pass *before* any training run
//! spends cycles. Passes:
//!
//! 1. **dead-parameter** — every registered parameter must have a
//!    gradient path to the loss root;
//! 2. **dead-subgraph** — every recorded op must reach the root;
//! 3. **shape** — re-derive each op's output shape from its inputs and op
//!    semantics, diff against the recorded shape;
//! 4. **op-coverage** — every op name on any tape, every op constructor in
//!    `crates/tensor/src/ops.rs`, and every name in
//!    [`pup_tensor::ops::BUILTIN_OPS`] must appear in the gradcheck sweep
//!    registry ([`crate::gradcheck::SWEPT_OPS`]);
//! 5. **determinism** — two same-seed forward recordings must produce
//!    identical canonical tape hashes.
//!
//! [`audit_workspace`] runs all five against all seven model types on a
//! tiny synthetic dataset; `cargo run -p pup-analysis -- audit-graph`
//! wraps it in the same exit-0/1/2 protocol as `lint`. Diagnostics are
//! file-less (`model: [pass] message`) — they describe a recorded graph,
//! not a source location.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pup_models::trainer::BprModel;
use pup_models::{
    BprMf, DeepFm, Fm, GcMc, Ngcf, Padq, PadqConfig, ParamRegistry, Pup, PupConfig, PupVariant,
    TrainData,
};
use pup_tensor::ops;
use pup_tensor::tape::{self, Tape};

use crate::gradcheck::SWEPT_OPS;

/// The five static passes, used to tag diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// A registered parameter has no path to the loss root.
    DeadParameter,
    /// A recorded op's output never reaches the loss root.
    DeadSubgraph,
    /// A recorded shape disagrees with the shape derived from op semantics.
    Shape,
    /// An op dodges the gradcheck sweep registry.
    OpCoverage,
    /// Two same-seed recordings produced different tapes.
    Determinism,
}

impl Pass {
    /// Stable diagnostic tag.
    pub fn name(self) -> &'static str {
        match self {
            Pass::DeadParameter => "dead-parameter",
            Pass::DeadSubgraph => "dead-subgraph",
            Pass::Shape => "shape",
            Pass::OpCoverage => "op-coverage",
            Pass::Determinism => "determinism",
        }
    }
}

/// One finding: which model's graph, which pass, what is wrong.
#[derive(Clone, Debug)]
pub struct GraphDiagnostic {
    /// Model the recorded graph belongs to (`"workspace"` for cross-model
    /// checks like the `ops.rs` registry diff).
    pub model: String,
    /// The pass that fired.
    pub pass: Pass,
    /// Human-readable description, including the offending name/op.
    pub message: String,
}

impl fmt::Display for GraphDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.model, self.pass.name(), self.message)
    }
}

/// A parameter as the auditor sees it: stable name + tape id.
#[derive(Clone, Debug)]
pub struct AuditedParam {
    /// Field-level name from the model's [`ParamRegistry`].
    pub name: String,
    /// The parameter leaf's node id.
    pub id: u64,
}

/// Ids of all nodes with a path to the root (following input edges
/// backwards from the root).
pub fn reachable_from_root(tape: &Tape) -> HashSet<u64> {
    let by_id: HashMap<u64, &[u64]> =
        tape.nodes.iter().map(|n| (n.id, n.inputs.as_slice())).collect();
    let mut reach = HashSet::new();
    let mut stack = vec![tape.root];
    while let Some(id) = stack.pop() {
        if !reach.insert(id) {
            continue;
        }
        if let Some(inputs) = by_id.get(&id) {
            stack.extend(inputs.iter().copied());
        }
    }
    reach
}

/// Pass 1: every registered parameter must be used by the forward pass and
/// reach the loss root.
pub fn check_dead_parameters(
    model: &str,
    tape: &Tape,
    params: &[AuditedParam],
) -> Vec<GraphDiagnostic> {
    let reach = reachable_from_root(tape);
    let on_tape: HashSet<u64> = tape.nodes.iter().map(|n| n.id).collect();
    let mut diags = Vec::new();
    for p in params {
        let message = if !on_tape.contains(&p.id) {
            format!("parameter `{}` is never used by the recorded forward pass", p.name)
        } else if !reach.contains(&p.id) {
            format!("parameter `{}` is used but its outputs never reach the loss root", p.name)
        } else {
            continue;
        };
        diags.push(GraphDiagnostic {
            model: model.to_string(),
            pass: Pass::DeadParameter,
            message,
        });
    }
    diags
}

/// Pass 2: every recorded non-leaf op must reach the root. (Leaves are
/// covered per-name by the dead-parameter pass; an unreachable *op* means
/// the forward pass computed something it then threw away.)
pub fn check_dead_subgraphs(model: &str, tape: &Tape) -> Vec<GraphDiagnostic> {
    let reach = reachable_from_root(tape);
    tape.nodes
        .iter()
        .filter(|n| !n.is_leaf() && !reach.contains(&n.id))
        .map(|n| GraphDiagnostic {
            model: model.to_string(),
            pass: Pass::DeadSubgraph,
            message: format!(
                "op `{}` (node {}, {}x{}) never reaches the loss root",
                n.op, n.id, n.shape.0, n.shape.1
            ),
        })
        .collect()
}

/// Pass 3: re-derive every op's output shape from its input shapes and diff
/// against the recorded shape. Ops with unknown semantics (custom ops) and
/// constraints the IR cannot express (the sparse operand of `spmm`, the
/// index list of `gather_rows`) are checked only partially; every partial
/// check is still directional (columns preserved, slices no wider than the
/// input).
pub fn check_shapes(model: &str, tape: &Tape) -> Vec<GraphDiagnostic> {
    let shape_of: HashMap<u64, (usize, usize)> =
        tape.nodes.iter().map(|n| (n.id, n.shape)).collect();
    let mut diags = Vec::new();
    let mut push = |op: &str, id: u64, message: String| {
        diags.push(GraphDiagnostic {
            model: model.to_string(),
            pass: Pass::Shape,
            message: format!("op `{op}` (node {id}): {message}"),
        });
    };
    for n in &tape.nodes {
        if n.is_leaf() {
            continue;
        }
        let inputs: Vec<(usize, usize)> =
            match n.inputs.iter().map(|i| shape_of.get(i).copied()).collect::<Option<Vec<_>>>() {
                Some(shapes) => shapes,
                None => {
                    push(n.op, n.id, "has an input id that is not on the tape".to_string());
                    continue;
                }
            };
        let got = n.shape;
        let arity_is = |k: usize| inputs.len() == k;
        let expect = |cond: bool, what: &str, diags_push: &mut dyn FnMut(String)| {
            if !cond {
                diags_push(format!(
                    "{what} (inputs {:?}, recorded output {}x{})",
                    inputs, got.0, got.1
                ));
            }
        };
        let mut fail = |msg: String| push(n.op, n.id, msg);
        match n.op {
            "add" | "sub" | "mul" => {
                expect(
                    arity_is(2) && inputs[0] == inputs[1] && got == inputs[0],
                    "elementwise op needs two equal-shape inputs and preserves the shape",
                    &mut fail,
                );
            }
            "scale" | "tanh" | "sigmoid" | "leaky_relu" | "square" | "softplus" | "dropout" => {
                expect(
                    arity_is(1) && got == inputs[0],
                    "unary op must preserve its input shape",
                    &mut fail,
                );
            }
            "matmul" => {
                expect(
                    arity_is(2) && inputs[0].1 == inputs[1].0 && got == (inputs[0].0, inputs[1].1),
                    "matmul needs (m,k)x(k,n) -> (m,n)",
                    &mut fail,
                );
            }
            // The sparse operand is not a tape node, so only the dense
            // operand constrains the output: columns are preserved.
            "spmm" => {
                expect(
                    arity_is(1) && got.1 == inputs[0].1,
                    "spmm must preserve the dense operand's column count",
                    &mut fail,
                );
            }
            // Row count equals the (unrecorded) index count; columns are
            // preserved.
            "gather_rows" => {
                expect(
                    arity_is(1) && got.1 == inputs[0].1,
                    "gather_rows must preserve the column count",
                    &mut fail,
                );
            }
            "rowwise_dot" => {
                expect(
                    arity_is(2) && inputs[0] == inputs[1] && got == (inputs[0].0, 1),
                    "rowwise_dot needs two equal-shape inputs -> (rows,1)",
                    &mut fail,
                );
            }
            "row_sums" => {
                expect(
                    arity_is(1) && got == (inputs[0].0, 1),
                    "row_sums maps (r,c) -> (r,1)",
                    &mut fail,
                );
            }
            "sum" => {
                expect(arity_is(1) && got == (1, 1), "sum reduces to a 1x1 scalar", &mut fail);
            }
            "concat_cols" => {
                expect(
                    arity_is(2)
                        && inputs[0].0 == inputs[1].0
                        && got == (inputs[0].0, inputs[0].1 + inputs[1].1),
                    "concat_cols needs equal rows, output cols = sum of input cols",
                    &mut fail,
                );
            }
            "concat_rows" => {
                expect(
                    arity_is(2)
                        && inputs[0].1 == inputs[1].1
                        && got == (inputs[0].0 + inputs[1].0, inputs[0].1),
                    "concat_rows needs equal cols, output rows = sum of input rows",
                    &mut fail,
                );
            }
            "slice_rows" => {
                expect(
                    arity_is(1) && got.1 == inputs[0].1 && got.0 <= inputs[0].0,
                    "slice_rows must preserve cols and not widen rows",
                    &mut fail,
                );
            }
            "slice_cols" => {
                expect(
                    arity_is(1) && got.0 == inputs[0].0 && got.1 <= inputs[0].1,
                    "slice_cols must preserve rows and not widen cols",
                    &mut fail,
                );
            }
            "add_row_broadcast" => {
                expect(
                    arity_is(2) && inputs[1] == (1, inputs[0].1) && got == inputs[0],
                    "add_row_broadcast needs (r,c) + (1,c) -> (r,c)",
                    &mut fail,
                );
            }
            // Custom op: semantics unknown to the auditor, nothing to derive.
            _ => {}
        }
    }
    diags
}

/// Pass 4a: every op name recorded on `tape` must be in the gradcheck sweep
/// registry (custom ops registered via `Var::custom_op` count as covered
/// only if the sweep lists them explicitly).
pub fn check_tape_op_coverage(model: &str, tape: &Tape, swept: &[&str]) -> Vec<GraphDiagnostic> {
    let mut missing: Vec<&str> = tape
        .nodes
        .iter()
        .filter(|n| !n.is_leaf())
        .map(|n| n.op)
        .filter(|op| !swept.contains(op))
        .collect();
    missing.sort_unstable();
    missing.dedup();
    missing
        .into_iter()
        .map(|op| GraphDiagnostic {
            model: model.to_string(),
            pass: Pass::OpCoverage,
            message: format!(
                "op `{op}` appears on the tape but not in the gradcheck sweep registry"
            ),
        })
        .collect()
}

/// Pass 4b: registry diff that needs no recorded tape — every name in
/// [`ops::BUILTIN_OPS`] must be swept, and (when `ops_rs_source` is
/// available) every `Var::from_op("name", ...)` literal in
/// `crates/tensor/src/ops.rs` must match `BUILTIN_OPS` exactly, so a new op
/// constructor cannot dodge either registry.
pub fn check_registry_coverage(
    swept: &[&str],
    ops_rs_source: Option<&str>,
) -> Vec<GraphDiagnostic> {
    let mut diags = Vec::new();
    let mut push = |message: String| {
        diags.push(GraphDiagnostic {
            model: "workspace".to_string(),
            pass: Pass::OpCoverage,
            message,
        });
    };
    for op in ops::BUILTIN_OPS {
        if !swept.contains(op) {
            push(format!("built-in op `{op}` is not in the gradcheck sweep registry"));
        }
    }
    if let Some(source) = ops_rs_source {
        let scraped = scrape_from_op_names(source);
        for op in &scraped {
            if !ops::BUILTIN_OPS.contains(&op.as_str()) {
                push(format!(
                    "ops.rs constructs op `{op}` that is missing from pup_tensor::ops::BUILTIN_OPS"
                ));
            }
        }
        for op in ops::BUILTIN_OPS {
            if !scraped.iter().any(|s| s == op) {
                push(format!("BUILTIN_OPS lists `{op}` but ops.rs has no such constructor"));
            }
        }
    }
    diags
}

/// Op-name literals passed to `Var::from_op(` in `ops.rs` source text.
fn scrape_from_op_names(source: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = source;
    while let Some(at) = rest.find("from_op(") {
        rest = &rest[at + "from_op(".len()..];
        // The op name is the first string literal after the call opens
        // (rustfmt may put it on the next line).
        let Some(q0) = rest.find('"') else { break };
        let after = &rest[q0 + 1..];
        let Some(q1) = after.find('"') else { break };
        let name = &after[..q1];
        // Skip the declaration site (`fn from_op(`) which has no literal
        // before the next call; a name with non-identifier chars means we
        // grabbed something else — ignore it.
        if !name.is_empty()
            && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            names.push(name.to_string());
        }
        rest = &after[q1..];
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Pass 5: two same-seed recordings must hash identically.
pub fn check_determinism(model: &str, first: &Tape, second: &Tape) -> Vec<GraphDiagnostic> {
    let (a, b) = (first.canonical_hash(), second.canonical_hash());
    if a == b {
        return Vec::new();
    }
    vec![GraphDiagnostic {
        model: model.to_string(),
        pass: Pass::Determinism,
        message: format!(
            "same-seed forward passes recorded different tapes \
             (hash {a:#018x} vs {b:#018x}; {} vs {} nodes)",
            first.len(),
            second.len()
        ),
    }]
}

/// Runs the per-tape passes (1-3 and 4a) on one recorded model graph.
pub fn audit_tape(
    model: &str,
    tape: &Tape,
    params: &[AuditedParam],
    swept: &[&str],
) -> Vec<GraphDiagnostic> {
    let mut diags = check_dead_parameters(model, tape, params);
    diags.extend(check_dead_subgraphs(model, tape));
    diags.extend(check_shapes(model, tape));
    diags.extend(check_tape_op_coverage(model, tape, swept));
    diags
}

// ---------------------------------------------------------------------------
// Workspace audit driver
// ---------------------------------------------------------------------------

/// Per-model summary line for the audit report.
#[derive(Clone, Debug)]
pub struct ModelAudit {
    /// Model name.
    pub model: &'static str,
    /// Nodes on the recorded tape.
    pub nodes: usize,
    /// Registered parameters.
    pub params: usize,
}

/// Everything `audit-graph` produces.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// All findings across all models and passes.
    pub diagnostics: Vec<GraphDiagnostic>,
    /// One summary entry per audited model.
    pub models: Vec<ModelAudit>,
    /// Non-finding observations (e.g. a skipped source scan).
    pub notes: Vec<String>,
}

/// 4 users x 4 items, 2 categories, 2 price levels — every entity
/// participates in the graph (mirrors the gradcheck sweep's toy dataset).
const TRAIN: [(usize, usize); 8] = [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3), (3, 3), (3, 0)];
const PRICE_LEVEL: [usize; 4] = [0, 1, 0, 1];
const CATEGORY: [usize; 4] = [0, 0, 1, 1];

fn toy_data() -> TrainData<'static> {
    TrainData {
        n_users: 4,
        n_items: 4,
        n_categories: 2,
        n_price_levels: 2,
        item_price_level: &PRICE_LEVEL,
        item_category: &CATEGORY,
        train: &TRAIN,
    }
}

fn audited_params(model: &impl ParamRegistry) -> Vec<AuditedParam> {
    model
        .named_params()
        .into_iter()
        .map(|p| AuditedParam { name: p.name, id: p.var.id() })
        .collect()
}

/// Records one BPR training step (sampling, both score batches, the BPR
/// loss) of `model` as a tape, mirroring how `train_bpr` drives models.
fn record_bpr_step<M: BprModel>(model: &mut M, seed: u64) -> Tape {
    let users = [0usize, 1, 2, 3];
    let pos = [0usize, 1, 2, 3];
    let neg = [2usize, 3, 0, 1];
    let mut rng = StdRng::seed_from_u64(seed);
    tape::start_recording();
    model.begin_step(&mut rng);
    let s_pos = model.score_batch(&users, &pos);
    let s_neg = model.score_batch(&users, &neg);
    let margin = ops::sub(&s_pos, &s_neg);
    let loss = ops::mean(&ops::softplus(&ops::scale(&margin, -1.0)));
    tape::finish_recording(&loss)
}

fn audit_bpr_model<M: BprModel + ParamRegistry>(
    name: &'static str,
    model: &mut M,
    report: &mut AuditReport,
) {
    let params = audited_params(model);
    let tape = record_bpr_step(model, 7);
    let again = record_bpr_step(model, 7);
    report.models.push(ModelAudit { model: name, nodes: tape.len(), params: params.len() });
    report.diagnostics.extend(audit_tape(name, &tape, &params, SWEPT_OPS));
    report.diagnostics.extend(check_determinism(name, &tape, &again));
}

/// Instantiates all seven model types on the toy dataset, records their
/// training-loss graphs, and runs every pass. `root` is the workspace root,
/// used only to locate `crates/tensor/src/ops.rs` for the registry scan.
pub fn audit_workspace(root: &Path) -> AuditReport {
    let mut report = AuditReport::default();
    let data = toy_data();

    audit_bpr_model("bprmf", &mut BprMf::new(&data, 4, 12), &mut report);
    audit_bpr_model("fm", &mut Fm::new(&data, 4, 13), &mut report);
    audit_bpr_model("deepfm", &mut DeepFm::new(&data, 4, 6, 16), &mut report);
    // Non-zero dropout so the dropout op is part of the audited graphs.
    audit_bpr_model("gcmc", &mut GcMc::new(&data, 4, 0.3, 15), &mut report);
    audit_bpr_model("ngcf", &mut Ngcf::new(&data, 4, 2, 0.3, 14), &mut report);
    let pup_cfg = PupConfig {
        global_dim: 4,
        category_dim: 3,
        n_layers: 1,
        dropout: 0.3,
        variant: PupVariant::Full,
        seed: 11,
        ..Default::default()
    };
    audit_bpr_model("pup", &mut Pup::new(&data, pup_cfg), &mut report);

    // PaDQ owns its fitting procedure; record its collective-MF objective.
    let padq_cfg = PadqConfig { dim: 4, epochs: 1, batch_size: 8, seed: 17, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(padq_cfg.seed);
    let padq = Padq::init(&data, &padq_cfg, &mut rng);
    let chunk: Vec<usize> = (0..data.train.len()).collect();
    let record_padq = |padq: &Padq, seed: u64| -> Tape {
        let mut rng = StdRng::seed_from_u64(seed);
        tape::start_recording();
        let loss = padq.training_loss(&data, &chunk, &padq_cfg, &mut rng);
        tape::finish_recording(&loss)
    };
    let params = audited_params(&padq);
    let tape = record_padq(&padq, 7);
    let again = record_padq(&padq, 7);
    report.models.push(ModelAudit { model: "padq", nodes: tape.len(), params: params.len() });
    report.diagnostics.extend(audit_tape("padq", &tape, &params, SWEPT_OPS));
    report.diagnostics.extend(check_determinism("padq", &tape, &again));

    // Registry diff (pass 4b): tape-independent.
    let ops_rs = root.join("crates").join("tensor").join("src").join("ops.rs");
    let source = std::fs::read_to_string(&ops_rs).ok();
    if source.is_none() {
        report.notes.push(format!(
            "note: {} not readable; skipped the ops.rs constructor scan \
             (BUILTIN_OPS vs sweep registry still checked)",
            ops_rs.display()
        ));
    }
    report.diagnostics.extend(check_registry_coverage(SWEPT_OPS, source.as_deref()));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pup_tensor::tape::TapeNode;
    use pup_tensor::{Matrix, Var};

    fn record_simple() -> (Tape, Var, Var) {
        let used = Var::param(Matrix::ones(2, 2));
        let unused = Var::param(Matrix::ones(2, 2));
        tape::start_recording();
        let loss = ops::sum(&ops::square(&used));
        (tape::finish_recording(&loss), used, unused)
    }

    #[test]
    fn unused_parameter_is_reported_dead() {
        let (tape, used, unused) = record_simple();
        let params = vec![
            AuditedParam { name: "used".into(), id: used.id() },
            AuditedParam { name: "unused".into(), id: unused.id() },
        ];
        let diags = check_dead_parameters("fixture", &tape, &params);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pass, Pass::DeadParameter);
        assert!(diags[0].message.contains("`unused`"), "got: {}", diags[0].message);
    }

    #[test]
    fn dangling_subgraph_is_reported() {
        let x = Var::param(Matrix::ones(2, 2));
        tape::start_recording();
        let _dead_end = ops::tanh(&x); // computed, then thrown away
        let loss = ops::sum(&x);
        let tape = tape::finish_recording(&loss);
        let diags = check_dead_subgraphs("fixture", &tape);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`tanh`"));
        // The parameter itself is fine: it reaches the loss.
        let params = vec![AuditedParam { name: "x".into(), id: x.id() }];
        assert!(check_dead_parameters("fixture", &tape, &params).is_empty());
    }

    #[test]
    fn consistent_recorded_graph_passes_shape_check() {
        let (tape, ..) = record_simple();
        assert!(check_shapes("fixture", &tape).is_empty());
    }

    #[test]
    fn hand_crafted_shape_mismatch_is_detected() {
        // matmul claims (2,3)x(3,4) -> (9,9): impossible.
        let tape = Tape {
            nodes: vec![
                TapeNode { id: 0, op: "leaf", inputs: vec![], shape: (2, 3), requires_grad: true },
                TapeNode { id: 1, op: "leaf", inputs: vec![], shape: (3, 4), requires_grad: true },
                TapeNode {
                    id: 2,
                    op: "matmul",
                    inputs: vec![0, 1],
                    shape: (9, 9),
                    requires_grad: true,
                },
            ],
            root: 2,
        };
        let diags = check_shapes("fixture", &tape);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pass, Pass::Shape);
        assert!(diags[0].message.contains("matmul"), "got: {}", diags[0].message);
    }

    #[test]
    fn unswept_op_fails_coverage() {
        let tape = Tape {
            nodes: vec![
                TapeNode { id: 0, op: "leaf", inputs: vec![], shape: (1, 1), requires_grad: true },
                TapeNode {
                    id: 1,
                    op: "mystery_op",
                    inputs: vec![0],
                    shape: (1, 1),
                    requires_grad: true,
                },
            ],
            root: 1,
        };
        let diags = check_tape_op_coverage("fixture", &tape, SWEPT_OPS);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("mystery_op"));
    }

    #[test]
    fn registry_scan_matches_builtin_ops() {
        // Run against the real ops.rs via a relative path from the
        // workspace; when the layout changes this test should move with it.
        let source = include_str!("../../tensor/src/ops.rs");
        assert!(check_registry_coverage(SWEPT_OPS, Some(source)).is_empty());
        let scraped = scrape_from_op_names(source);
        assert_eq!(scraped.len(), ops::BUILTIN_OPS.len());
    }

    #[test]
    fn registry_scan_flags_unlisted_constructor() {
        let doctored = r#"
            Var::from_op(
                "sneaky_new_op",
                value,
            )
        "#;
        let diags = check_registry_coverage(SWEPT_OPS, Some(doctored));
        assert!(diags.iter().any(|d| d.message.contains("sneaky_new_op")), "got: {diags:?}");
    }

    #[test]
    fn determinism_flags_differing_tapes() {
        let (a, ..) = record_simple();
        let x = Var::param(Matrix::ones(3, 3)); // different shape -> different hash
        tape::start_recording();
        let loss = ops::sum(&ops::square(&x));
        let b = tape::finish_recording(&loss);
        assert_eq!(check_determinism("fixture", &a, &a).len(), 0);
        assert_eq!(check_determinism("fixture", &a, &b).len(), 1);
    }
}
