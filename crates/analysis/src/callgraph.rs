//! Workspace-wide interprocedural call graph over [`crate::syntax`] spans.
//!
//! The hot-path certifier ([`crate::hotpath`]) needs to answer "which
//! functions can a serve-time scoring request reach?" without running
//! anything. This module builds the conservative call graph that question
//! is asked against:
//!
//! - **Nodes** are every `fn` defined in `crates/*/src` — free functions,
//!   inherent methods, trait methods and trait default bodies. Closures are
//!   not nodes: a closure body lies inside its enclosing fn's body span, so
//!   its calls and panic sites are attributed to that fn (the closure runs
//!   on the hot path iff its owner does — conservative and simple).
//!   Nested `fn` items are attributed to themselves, not their parent
//!   (attribution is by *innermost* enclosing body).
//! - **Edges** are syntactic call sites. A qualified call `Type::method(…)`
//!   resolves to workspace fns named `method` inside an `impl` (or `trait`)
//!   block for `Type`; if none exists the callee is foreign (std or a shim)
//!   and the edge is dropped. An unqualified call `helper(…)` or a method
//!   call `recv.method(…)` resolves to **every** non-test workspace fn with
//!   that name — the conservative trait-impl fan-out that makes
//!   `scorer.score(u)` reach every `Scorer::score` implementation without a
//!   type system. Macro invocations (`name!`) and the `fn name(` definition
//!   site itself are never calls.
//!
//! The graph is deliberately sound-for-reachability rather than precise:
//! it may contain edges no execution takes (two unrelated types sharing a
//! method name), but a call it *misses* would be a hole in the certifier,
//! so every ambiguity resolves toward more edges. The one soundness caveat
//! is function pointers / closures passed as values and invoked through a
//! variable — see DESIGN.md §13.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lex::TokenKind;
use crate::lint::workspace_rs_files;
use crate::syntax::{in_any, SourceFile};

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "else", "fn", "move", "as", "where",
    "impl", "dyn",
];

/// One function node in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// File the fn is defined in.
    pub file: PathBuf,
    /// Crate directory name (`crates/<name>/…`).
    pub crate_name: String,
    /// Bare fn name (`score`).
    pub name: String,
    /// Display name: `<file-stem>::<ImplType>::<name>` for methods,
    /// `<file-stem>::<name>` for free fns.
    pub qual: String,
    /// The `impl`/`trait` type the fn is a method of, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte span of the body block, `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the fn lives in test-gated code (`#[test]`, `#[cfg(test)]`).
    pub is_test: bool,
    /// The `// pup-hot: <label>` annotation naming this fn a hot root.
    pub hot_root: Option<String>,
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

/// One syntactic call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee's bare name.
    pub callee: String,
    /// The `Type` of a qualified `Type::method(` call, if any.
    pub qualifier: Option<String>,
    /// Whether this was a `.method(` receiver call.
    pub is_method: bool,
    /// Byte offset of the callee ident.
    pub offset: usize,
    /// 1-based line.
    pub line: usize,
}

/// The whole-workspace call graph.
pub struct CallGraph {
    /// Every fn node, ordered by (file, offset).
    pub fns: Vec<FnNode>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Name -> indices of non-test fns with that bare name.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Transitive crate dependency closure (`serve` -> {`models`, …}),
    /// read from the workspace `Cargo.toml`s. `None` (in-memory builds)
    /// means no cross-crate pruning.
    crate_deps: Option<BTreeMap<String, BTreeSet<String>>>,
}

impl CallGraph {
    /// Builds the graph for every `.rs` file under `<root>/crates/*/src`,
    /// pruning cross-crate edges the `Cargo.toml` dependency graph
    /// forbids (a `serve` fn cannot really call into `analysis`; without
    /// the pruning, bare-name fan-out would manufacture such edges).
    pub fn build(root: &Path) -> io::Result<CallGraph> {
        let files = workspace_rs_files(root)?;
        let mut sources = Vec::with_capacity(files.len());
        for file in files {
            let text = fs::read_to_string(&file)?;
            sources.push((file, text));
        }
        let mut graph = Self::build_from_sources(&sources);
        graph.attach_crate_deps(root);
        Ok(graph)
    }

    /// Reads `<root>/crates/*/Cargo.toml` and enables cross-crate edge
    /// pruning. A root without any manifests (fixture trees) leaves the
    /// graph unpruned.
    pub fn attach_crate_deps(&mut self, root: &Path) {
        let closure = crate_dep_closure(root);
        if !closure.is_empty() {
            self.crate_deps = Some(closure);
        }
    }

    /// Builds the graph from in-memory `(path, source)` pairs. No crate
    /// dependency information: every cross-crate edge is allowed.
    pub fn build_from_sources(sources: &[(PathBuf, String)]) -> CallGraph {
        let mut fns = Vec::new();
        for (path, text) in sources {
            extract_fns(path, text, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if !f.is_test && f.body.is_some() {
                by_name.entry(f.name.to_string()).or_default().push(i);
            }
        }
        CallGraph { fns, files_scanned: sources.len(), by_name, crate_deps: None }
    }

    /// Whether a fn of `caller_crate` can call into `callee_crate`.
    fn crate_edge_ok(&self, caller_crate: &str, callee_crate: &str) -> bool {
        if caller_crate == callee_crate {
            return true;
        }
        match &self.crate_deps {
            None => true,
            Some(deps) => deps.get(caller_crate).is_some_and(|d| d.contains(callee_crate)),
        }
    }

    /// Indices of the fns the call site in `self.fns[caller]` may dispatch
    /// to, approximating Rust name resolution without types:
    ///
    /// - `Self::method` resolves against the caller's impl type.
    /// - `Type::method` restricts to the qualifier's impl block when any
    ///   such fn exists; then `pup_x::f` to free fns of crate `x`;
    ///   `crate::f` / `super::f` / `self::f` to the caller's crate;
    ///   `module::f` to fns defined in a file named `module.rs`. A
    ///   qualifier matching none of those is foreign (`Vec::new`,
    ///   `Instant::now`): no workspace edge at all.
    /// - A bare call `helper(…)` resolves same-file first, then
    ///   same-crate, then (for `use`-imported fns) workspace-wide.
    /// - A method call `recv.method(…)` fans out to **every** non-test fn
    ///   with the name — the conservative trait-impl fan-out that makes
    ///   `scorer.score(u)` reach every implementation without a type
    ///   system.
    ///
    /// Edges the crate dependency graph forbids are dropped.
    pub fn callees(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let Some(all) = self.by_name.get(&call.callee) else { return Vec::new() };
        let caller_crate = self.fns[caller].crate_name.as_str();
        let allowed = |this: &Self, set: Vec<usize>| -> Vec<usize> {
            set.into_iter()
                .filter(|&i| this.crate_edge_ok(caller_crate, &this.fns[i].crate_name))
                .collect()
        };
        let pick = |pred: &dyn Fn(&FnNode) -> bool| -> Vec<usize> {
            all.iter().copied().filter(|&i| pred(&self.fns[i])).collect()
        };
        let qualifier = match call.qualifier.as_deref() {
            Some("Self") => match self.fns[caller].impl_type.as_deref() {
                Some(ty) => Some(ty.to_string()),
                // `Self::x` outside an impl cannot happen in code that
                // compiles; resolve to nothing.
                None => return Vec::new(),
            },
            other => other.map(str::to_string),
        };
        if let Some(q) = qualifier {
            let typed = pick(&|f| f.impl_type.as_deref() == Some(q.as_str()));
            if !typed.is_empty() {
                return allowed(self, typed);
            }
            if let Some(dep) = q.strip_prefix("pup_") {
                return allowed(self, pick(&|f| f.crate_name == dep && f.impl_type.is_none()));
            }
            if matches!(q.as_str(), "crate" | "super" | "self") {
                return pick(&|f| f.crate_name == caller_crate);
            }
            let module = pick(&|f| f.file.file_stem().and_then(|s| s.to_str()) == Some(q.as_str()));
            return allowed(self, module);
        }
        if !call.is_method {
            let same_file = pick(&|f| f.file == self.fns[caller].file);
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate = pick(&|f| f.crate_name == caller_crate);
            if !same_crate.is_empty() {
                return same_crate;
            }
        }
        allowed(self, all.to_vec())
    }

    /// The fns annotated `// pup-hot: <label>`, as `(label, index)` pairs.
    pub fn hot_roots(&self) -> Vec<(String, usize)> {
        let mut roots: Vec<(String, usize)> = self
            .fns
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.hot_root.as_ref().map(|l| (l.to_string(), i)))
            .collect();
        roots.sort();
        roots
    }
}

/// Reads each `crates/<name>/Cargo.toml` and returns the transitive
/// dependency closure keyed by crate directory name. Only `pup-*`
/// workspace dependencies matter; `[dev-dependencies]` are excluded —
/// non-test code (all the certifier looks at) cannot reach them.
fn crate_dep_closure(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let entries = match fs::read_dir(&crates_dir) {
        Ok(e) => e,
        Err(_) => return direct,
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Ok(manifest) = fs::read_to_string(entry.path().join("Cargo.toml")) else { continue };
        let mut in_deps = false;
        let mut deps = BTreeSet::new();
        for line in manifest.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(rest) = line.strip_prefix("pup-") {
                if let Some(dep) = rest.split(['=', ' ', '.']).next() {
                    if !dep.is_empty() {
                        deps.insert(dep.to_string());
                    }
                }
            }
        }
        direct.insert(name, deps);
    }
    // Transitive closure (the graph is tiny; iterate to fixpoint).
    let mut closure = direct.clone();
    loop {
        let mut changed = false;
        for name in direct.keys() {
            let reachable: BTreeSet<String> = closure[name]
                .iter()
                .flat_map(|d| closure.get(d).into_iter().flatten().cloned())
                .collect();
            if let Some(set) = closure.get_mut(name) {
                for r in reachable {
                    changed |= set.insert(r);
                }
            }
        }
        if !changed {
            break;
        }
    }
    closure
}

/// The crate directory name for a workspace file path (`crates/<name>/…`).
fn crate_of(path: &Path) -> String {
    let comps: Vec<String> =
        path.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    comps
        .iter()
        .rposition(|c| c == "crates")
        .and_then(|i| comps.get(i + 1))
        .cloned()
        .unwrap_or_default()
}

/// One `impl`/`trait` block: the type name and its body's byte span.
fn impl_blocks(file: &SourceFile<'_>) -> Vec<(String, (usize, usize))> {
    let mut blocks = Vec::new();
    for p in 0..file.code.len() {
        let kw = file.code[p];
        let word = if file.tokens[kw].kind == TokenKind::Ident { file.text(kw) } else { "" };
        if word != "impl" && word != "trait" {
            continue;
        }
        // Walk to the body `{`, skipping (…)/[…] and generic <…> runs; the
        // impl type is the last plain ident seen before the body (or before
        // `where` — a where clause may mention other types but the impl
        // type is already decided by then), except that in
        // `impl Trait for Type` everything before `for` is the trait. For
        // `trait Name {` the name is the type (default bodies dispatch
        // through it).
        let mut ty: Option<String> = None;
        let mut in_where = false;
        let mut q = p + 1;
        let mut angle = 0i32;
        while let Some(&ti) = file.code.get(q) {
            if file.is_punct(ti, b'(') || file.is_punct(ti, b'[') {
                match file.matching(ti).and_then(|c| file.code_pos(c)) {
                    Some(cp) => {
                        q = cp + 1;
                        continue;
                    }
                    None => break,
                }
            } else if file.is_punct(ti, b'<') {
                angle += 1;
            } else if file.is_punct(ti, b'>') {
                angle -= 1;
            } else if file.is_punct(ti, b'{') && angle <= 0 {
                if let Some(close) = file.matching(ti) {
                    if let Some(ty) = ty {
                        blocks.push((ty, (file.tokens[ti].start, file.tokens[close].end)));
                    }
                }
                break;
            } else if file.is_punct(ti, b';') {
                break;
            } else if !in_where && file.tokens[ti].kind == TokenKind::Ident && angle == 0 {
                match file.text(ti) {
                    "for" => ty = None, // `impl Trait for Type`: restart on the type
                    "where" => in_where = true,
                    "dyn" | "mut" | "const" => {}
                    w => ty = Some(w.to_string()),
                }
            }
            q += 1;
        }
    }
    blocks
}

/// Extracts every fn node (with call sites) from one file into `out`.
fn extract_fns(path: &Path, source: &str, out: &mut Vec<FnNode>) {
    let file = SourceFile::parse(source);
    let test_spans = file.test_spans();
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("?").to_string();
    let crate_name = crate_of(path);
    let impls = impl_blocks(&file);
    let defs = file.fn_defs();

    // Body spans of all defs, for innermost-fn attribution of call sites.
    let bodies: Vec<Option<(usize, usize)>> = defs
        .iter()
        .map(|d| d.body.map(|(o, c)| (file.tokens[o].start, file.tokens[c].end)))
        .collect();

    let base = out.len();
    for (k, def) in defs.iter().enumerate() {
        let kw_at = file.tokens[def.kw].start;
        let name = def.name.map(|i| file.text(i)).unwrap_or("?").to_string();
        let impl_type = impls
            .iter()
            .filter(|(_, span)| kw_at >= span.0 && kw_at < span.1)
            .min_by_key(|(_, span)| span.1 - span.0)
            .map(|(ty, _)| ty.to_string());
        let qual = match &impl_type {
            Some(ty) => format!("{stem}::{ty}::{name}"),
            None => format!("{stem}::{name}"),
        };
        let hot_root = hot_annotation(&file, def.kw);
        out.push(FnNode {
            file: path.to_path_buf(),
            crate_name: crate_name.to_string(),
            name,
            qual,
            impl_type,
            line: file.line_of(kw_at),
            body: bodies[k],
            is_test: in_any(&test_spans, kw_at),
            hot_root,
            calls: Vec::new(),
        });
    }

    // Call sites, attributed to the innermost enclosing fn body.
    for p in 0..file.code.len() {
        let ti = file.code[p];
        if file.tokens[ti].kind != TokenKind::Ident {
            continue;
        }
        let Some(&open) = file.code.get(p + 1) else { continue };
        if !file.is_punct(open, b'(') {
            continue;
        }
        let name = file.text(ti);
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let at = file.tokens[ti].start;
        // `fn name(` is a definition; `name!(` is a macro. Both out.
        if p > 0 {
            let prev = file.code[p - 1];
            if file.is_ident(prev, "fn") {
                continue;
            }
        }
        // (A macro bang comes *after* the name: `name!(…)` lexes as
        // ident, `!`, `(` — the token after the name is `!`, so the
        // `(`-check above already excluded it.)
        let is_method = p > 0 && file.is_punct(file.code[p - 1], b'.');
        let qualifier = (!is_method)
            .then(|| {
                // `Type::name(` — two colons then an ident, walking over
                // a possible turbofish-free path.
                if p >= 3
                    && file.is_punct(file.code[p - 1], b':')
                    && file.is_punct(file.code[p - 2], b':')
                    && file.tokens[file.code[p - 3]].kind == TokenKind::Ident
                {
                    Some(file.text(file.code[p - 3]).to_string())
                } else {
                    None
                }
            })
            .flatten();
        let owner = (0..defs.len())
            .filter_map(|k| bodies[k].map(|span| (k, span)))
            .filter(|&(_, span)| at > span.0 && at < span.1)
            .min_by_key(|&(_, span)| span.1 - span.0)
            .map(|(k, _)| k);
        let Some(owner) = owner else { continue };
        out[base + owner].calls.push(CallSite {
            callee: name.to_string(),
            qualifier,
            is_method,
            offset: at,
            line: file.line_of(at),
        });
    }
}

/// Reads a `// pup-hot: <label>` annotation from the plain comments
/// directly above the `fn` keyword (attributes and doc comments may sit in
/// between).
pub(crate) fn hot_annotation(file: &SourceFile<'_>, fn_kw: usize) -> Option<String> {
    const MARKER: &str = "pup-hot:";
    let mut ti = fn_kw;
    // Walk raw tokens backwards over trivia, doc comments, attributes and
    // visibility/ABI keywords until something that ends the item header.
    while ti > 0 {
        ti -= 1;
        match file.tokens[ti].kind {
            TokenKind::Whitespace
            | TokenKind::LineComment { doc: true }
            | TokenKind::BlockComment { doc: true } => continue,
            TokenKind::LineComment { doc: false } | TokenKind::BlockComment { doc: false } => {
                let text = file.tokens[ti].text(file.src);
                if let Some(at) = text.find(MARKER) {
                    let label = text[at + MARKER.len()..]
                        .trim_start_matches(['*', ' '])
                        .trim_end_matches(['*', '/', ' '])
                        .trim();
                    if !label.is_empty() {
                        return Some(label.to_string());
                    }
                }
                continue;
            }
            TokenKind::Ident
                if matches!(file.text(ti), "pub" | "unsafe" | "const" | "async" | "extern") =>
            {
                continue;
            }
            TokenKind::Str => continue, // `extern "C"`
            TokenKind::Punct if file.is_punct(ti, b']') => {
                // Skip a whole `#[…]` attribute.
                match file.matching(ti) {
                    Some(open) => {
                        let mut j = open;
                        while j > 0 && file.tokens[j - 1].kind == TokenKind::Whitespace {
                            j -= 1;
                        }
                        if j > 0 && file.is_punct(j - 1, b'#') {
                            ti = j - 1;
                            continue;
                        }
                        return None;
                    }
                    None => return None,
                }
            }
            TokenKind::Punct if file.is_punct(ti, b')') => {
                // `pub(crate)` visibility group.
                match file.matching(ti) {
                    Some(open) => {
                        ti = open;
                        continue;
                    }
                    None => return None,
                }
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let sources: Vec<(PathBuf, String)> =
            files.iter().map(|(p, s)| (PathBuf::from(p), s.to_string())).collect();
        CallGraph::build_from_sources(&sources)
    }

    fn find<'g>(g: &'g CallGraph, name: &str) -> &'g FnNode {
        &g.fns[idx(g, name)]
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).expect("fn present")
    }

    #[test]
    fn free_fns_methods_and_trait_defaults_are_nodes() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "pub fn free() {}\n\
             pub struct S;\n\
             impl S {\n    pub fn method(&self) {}\n}\n\
             pub trait T {\n    fn required(&self);\n    fn provided(&self) { self.required() }\n}\n\
             impl T for S {\n    fn required(&self) {}\n}\n",
        )]);
        assert_eq!(find(&g, "free").impl_type, None);
        assert_eq!(find(&g, "method").impl_type.as_deref(), Some("S"));
        assert_eq!(find(&g, "provided").impl_type.as_deref(), Some("T"));
        let required: Vec<_> = g.fns.iter().filter(|f| f.name == "required").collect();
        assert_eq!(required.len(), 2, "declaration + impl");
        assert!(required.iter().any(|f| f.body.is_some()));
        assert_eq!(find(&g, "free").qual, "lib::free");
        assert_eq!(find(&g, "method").qual, "lib::S::method");
    }

    #[test]
    fn method_calls_fan_out_to_all_impls() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "trait Scorer { fn score(&self) -> f64; }\n\
             struct A;\nimpl Scorer for A { fn score(&self) -> f64 { 1.0 } }\n\
             struct B;\nimpl Scorer for B { fn score(&self) -> f64 { 2.0 } }\n\
             fn drive(s: &dyn Scorer) -> f64 { s.score() }\n",
        )]);
        let drive = idx(&g, "drive");
        assert_eq!(g.fns[drive].calls.len(), 1);
        let callees = g.callees(drive, &g.fns[drive].calls[0]);
        assert_eq!(callees.len(), 2, "both impls reachable: {callees:?}");
    }

    #[test]
    fn qualified_calls_resolve_to_the_named_impl_only() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "struct A;\nimpl A { fn make() -> A { A } }\n\
             struct B;\nimpl B { fn make() -> B { B } }\n\
             fn f() { let _ = A::make(); }\n\
             fn foreign() { let _ = Vec::new(); }\n",
        )]);
        let f = idx(&g, "f");
        let make_call = g.fns[f].calls.iter().find(|c| c.callee == "make").expect("call").clone();
        let callees = g.callees(f, &make_call);
        assert_eq!(callees.len(), 1);
        assert_eq!(g.fns[callees[0]].qual, "lib::A::make");
        // `Vec::new` has no workspace impl: a foreign leaf, no edges.
        let foreign = idx(&g, "foreign");
        let new_call =
            g.fns[foreign].calls.iter().find(|c| c.callee == "new").expect("call").clone();
        assert!(g.callees(foreign, &new_call).is_empty());
    }

    #[test]
    fn closure_calls_attribute_to_the_enclosing_fn_and_nested_fns_to_themselves() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "fn helper() {}\nfn inner_target() {}\n\
             fn outer() {\n    let c = || helper();\n    c();\n    fn nested() { inner_target() }\n    nested();\n}\n",
        )]);
        let outer = find(&g, "outer");
        assert!(
            outer.calls.iter().any(|c| c.callee == "helper"),
            "closure body call belongs to outer: {:?}",
            outer.calls
        );
        assert!(
            !outer.calls.iter().any(|c| c.callee == "inner_target"),
            "nested fn body is its own node"
        );
        let nested = find(&g, "nested");
        assert!(nested.calls.iter().any(|c| c.callee == "inner_target"));
    }

    #[test]
    fn macros_and_definitions_are_not_calls() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "fn f() {\n    println!(\"x\");\n    vec![1, 2];\n}\n",
        )]);
        assert!(find(&g, "f").calls.is_empty(), "{:?}", find(&g, "f").calls);
    }

    #[test]
    fn hot_annotations_are_read_above_attributes_and_docs() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "// pup-hot: serve-request\n/// Docs.\n#[inline]\npub fn process() {}\n\
             fn plain() {}\n",
        )]);
        assert_eq!(find(&g, "process").hot_root.as_deref(), Some("serve-request"));
        assert_eq!(find(&g, "plain").hot_root, None);
        assert_eq!(g.hot_roots().len(), 1);
    }

    #[test]
    fn test_fns_are_marked_and_excluded_from_resolution() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn live() { super::live() }\n}\n\
             fn caller() { live() }\n",
        )]);
        let caller = idx(&g, "caller");
        let callees = g.callees(caller, &g.fns[caller].calls[0]);
        assert_eq!(callees.len(), 1, "only the non-test fn resolves");
        assert!(!g.fns[callees[0]].is_test);
    }

    #[test]
    fn self_calls_resolve_to_the_callers_impl() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "struct A;\nimpl A {\n    fn new() -> A { A }\n    fn fresh() -> A { Self::new() }\n}\n\
             struct B;\nimpl B { fn new() -> B { B } }\n",
        )]);
        let fresh = idx(&g, "fresh");
        let call = g.fns[fresh].calls.iter().find(|c| c.callee == "new").expect("call").clone();
        assert_eq!(call.qualifier.as_deref(), Some("Self"));
        let callees = g.callees(fresh, &call);
        assert_eq!(callees.len(), 1, "Self:: does not fan out: {callees:?}");
        assert_eq!(g.fns[callees[0]].qual, "lib::A::new");
    }
}
