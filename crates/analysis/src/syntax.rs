//! Item/block span parsing over the [`crate::lex`] token stream.
//!
//! [`SourceFile`] computes the byte-span-accurate scopes every token-based
//! pass needs and a line scanner cannot get right:
//!
//! - **test scopes** — items annotated `#[test]` or with any `cfg`
//!   attribute that mentions `test` (so `#[cfg(all(test, feature = "x"))]`
//!   and multi-line attributes are excluded correctly, a known
//!   false-positive class of the old regex engine);
//! - **fn definitions** — name, parameter group and body span for every
//!   `fn`, with `where` clauses, generic returns and trait declarations
//!   without bodies handled;
//! - **loop bodies** — `for` / `while` / `loop`, with `impl Trait for T`
//!   headers and `for<'a>` higher-ranked bounds excluded;
//! - **statements** — `;`- and block-terminated statement spans inside any
//!   brace pair, which give rules a "same statement" scope that survives
//!   rustfmt line wrapping;
//! - **call argument spans** — the parenthesised argument list of a named
//!   call such as `Box::new(…)`.
//!
//! Everything is computed from bracket matching on *code* tokens (trivia
//! skipped), so needles inside strings, comments or doc examples can never
//! open or close a scope.

use crate::lex::{lex, Token, TokenKind};

/// A lexed file plus the derived structure the passes query.
pub struct SourceFile<'a> {
    /// The source text.
    pub src: &'a str,
    /// The lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices (into `tokens`) of non-trivia tokens, in order.
    pub code: Vec<usize>,
    /// Byte offset where each line starts; `line_starts[0] == 0`.
    pub line_starts: Vec<usize>,
    /// For each token index, the index of its matching bracket token, for
    /// `(` `)` `[` `]` `{` `}` tokens that pair up.
    match_idx: Vec<Option<usize>>,
}

/// One `fn` definition: token indices into [`SourceFile::tokens`].
#[derive(Debug, Clone, Copy)]
pub struct FnDef {
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Token index of the name ident (if present).
    pub name: Option<usize>,
    /// Token indices of the parameter list's `(` and `)`.
    pub params: Option<(usize, usize)>,
    /// Token indices of the body's `{` and `}`; `None` for bodyless
    /// declarations.
    pub body: Option<(usize, usize)>,
}

/// One statement inside a block: a token-index range `[first, last]`
/// (inclusive) over code tokens, plus whether it is a `let` binding.
#[derive(Debug, Clone, Copy)]
pub struct Stmt {
    /// Byte span `[start, end)` of the statement.
    pub span: (usize, usize),
    /// Token index of the first code token.
    pub first: usize,
    /// Token index of the last code token (the `;` or closing `}`).
    pub last: usize,
    /// Whether the statement starts with `let`.
    pub is_let: bool,
}

impl<'a> SourceFile<'a> {
    /// Lexes and indexes `src`.
    pub fn parse(src: &'a str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].kind.is_trivia()).collect();
        let mut line_starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut match_idx = vec![None; tokens.len()];
        let mut stack: Vec<(u8, usize)> = Vec::new();
        for &i in &code {
            let t = &tokens[i];
            if t.kind != TokenKind::Punct {
                continue;
            }
            match src.as_bytes()[t.start] {
                c @ (b'(' | b'[' | b'{') => stack.push((c, i)),
                c @ (b')' | b']' | b'}') => {
                    let open = match c {
                        b')' => b'(',
                        b']' => b'[',
                        _ => b'{',
                    };
                    // Tolerate mismatched input: pop only a matching opener.
                    if let Some(pos) = stack.iter().rposition(|&(o, _)| o == open) {
                        let (_, oi) = stack.remove(pos);
                        match_idx[oi] = Some(i);
                        match_idx[i] = Some(oi);
                    }
                }
                _ => {}
            }
        }
        Self { src, tokens, code, line_starts, match_idx }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// The matching bracket token index for token `i`, if any.
    pub fn matching(&self, i: usize) -> Option<usize> {
        self.match_idx.get(i).copied().flatten()
    }

    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &'a str {
        self.tokens[i].text(self.src)
    }

    /// Whether token `i` is a `Punct` with exactly this byte.
    pub fn is_punct(&self, i: usize, c: u8) -> bool {
        self.tokens[i].kind == TokenKind::Punct && self.src.as_bytes()[self.tokens[i].start] == c
    }

    /// Whether token `i` is an `Ident` with exactly this text.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens[i].kind == TokenKind::Ident && self.text(i) == name
    }

    /// Position of token index `i` within the `code` list, if `i` is code.
    pub fn code_pos(&self, i: usize) -> Option<usize> {
        self.code.binary_search(&i).ok()
    }

    /// The next code token after code-position `p`.
    pub fn next_code(&self, p: usize) -> Option<usize> {
        self.code.get(p + 1).copied()
    }

    /// The previous code token before code-position `p`.
    pub fn prev_code(&self, p: usize) -> Option<usize> {
        p.checked_sub(1).map(|q| self.code[q])
    }

    /// Whether the code tokens starting at code-position `p` match
    /// `pattern`, where each element is either a literal punct byte
    /// (single-char string) or an ident text. Trivia between tokens is
    /// ignored — this is what makes the match immune to rustfmt wrapping.
    pub fn match_seq(&self, p: usize, pattern: &[&str]) -> bool {
        for (k, want) in pattern.iter().enumerate() {
            let Some(&ti) = self.code.get(p + k) else { return false };
            let ok = if want.len() == 1
                && !want.as_bytes()[0].is_ascii_alphanumeric()
                && want.as_bytes()[0] != b'_'
            {
                self.is_punct(ti, want.as_bytes()[0])
            } else {
                self.is_ident(ti, want)
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// All code positions where `pattern` (see [`Self::match_seq`]) matches.
    pub fn find_seq(&self, pattern: &[&str]) -> Vec<usize> {
        (0..self.code.len()).filter(|&p| self.match_seq(p, pattern)).collect()
    }

    /// Byte spans of items gated to test builds: `#[test]` functions and
    /// any item whose `#[cfg(…)]` attribute mentions the ident `test`.
    pub fn test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        for p in 0..self.code.len() {
            let hash = self.code[p];
            if !self.is_punct(hash, b'#') {
                continue;
            }
            let Some(open) = self.next_code(p).filter(|&i| self.is_punct(i, b'[')) else {
                continue;
            };
            let Some(close) = self.matching(open) else { continue };
            // First code token inside the attribute names it.
            let Some(head) = self.code.iter().copied().find(|&i| i > open && i < close) else {
                continue;
            };
            let is_test_attr = self.is_ident(head, "test")
                || (self.is_ident(head, "cfg")
                    && self
                        .code
                        .iter()
                        .any(|&i| i > head && i < close && self.is_ident(i, "test")));
            if !is_test_attr {
                continue;
            }
            if let Some(end) = self.item_end_after(close) {
                spans.push((self.tokens[hash].start, end));
            }
        }
        spans
    }

    /// Given the token index of an attribute's closing `]`, returns the
    /// byte offset one past the end of the annotated item (its matched
    /// `{…}` body or terminating `;`), skipping any further attributes.
    fn item_end_after(&self, attr_close: usize) -> Option<usize> {
        let mut p = self.code_pos(attr_close)? + 1;
        // Skip subsequent attributes.
        while let (Some(&a), Some(&b)) = (self.code.get(p), self.code.get(p + 1)) {
            if self.is_punct(a, b'#') && self.is_punct(b, b'[') {
                p = self.code_pos(self.matching(b)?)? + 1;
            } else {
                break;
            }
        }
        // Scan for the item's body or terminator, skipping (…)/[…] groups.
        while let Some(&ti) = self.code.get(p) {
            if self.is_punct(ti, b'(') || self.is_punct(ti, b'[') {
                p = self.code_pos(self.matching(ti)?)? + 1;
            } else if self.is_punct(ti, b'{') {
                let close = self.matching(ti)?;
                return Some(self.tokens[close].end);
            } else if self.is_punct(ti, b';') {
                return Some(self.tokens[ti].end);
            } else {
                p += 1;
            }
        }
        None
    }

    /// Every `fn` definition in the file.
    pub fn fn_defs(&self) -> Vec<FnDef> {
        let mut defs = Vec::new();
        for p in 0..self.code.len() {
            let kw = self.code[p];
            if !self.is_ident(kw, "fn") {
                continue;
            }
            let name = self.next_code(p).filter(|&i| self.tokens[i].kind == TokenKind::Ident);
            let mut params = None;
            let mut body = None;
            let mut q = p + 1;
            while let Some(&ti) = self.code.get(q) {
                if self.is_punct(ti, b'(') {
                    if let Some(close) = self.matching(ti) {
                        if params.is_none() {
                            params = Some((ti, close));
                        }
                        q = match self.code_pos(close) {
                            Some(cp) => cp + 1,
                            None => break,
                        };
                        continue;
                    }
                    break;
                } else if self.is_punct(ti, b'[') {
                    match self.matching(ti).and_then(|c| self.code_pos(c)) {
                        Some(cp) => {
                            q = cp + 1;
                            continue;
                        }
                        None => break,
                    }
                } else if self.is_punct(ti, b'{') {
                    if let Some(close) = self.matching(ti) {
                        body = Some((ti, close));
                    }
                    break;
                } else if self.is_punct(ti, b';') {
                    break;
                }
                q += 1;
            }
            defs.push(FnDef { kw, name, params, body });
        }
        defs
    }

    /// Byte spans of all `fn` bodies.
    pub fn fn_body_spans(&self) -> Vec<(usize, usize)> {
        self.fn_defs()
            .iter()
            .filter_map(|d| d.body)
            .map(|(o, c)| (self.tokens[o].start, self.tokens[c].end))
            .collect()
    }

    /// Byte spans of `for` / `while` / `loop` bodies. `impl … for …`
    /// headers and `for<'a>` higher-ranked bounds are not loops.
    pub fn loop_body_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        for p in 0..self.code.len() {
            let kw = self.code[p];
            if self.tokens[kw].kind != TokenKind::Ident {
                continue;
            }
            let word = self.text(kw);
            let is_loop_kw = match word {
                "while" | "loop" => true,
                "for" => {
                    // `for<'a>` HRTB is not a loop.
                    let hrtb = self.next_code(p).is_some_and(|i| self.is_punct(i, b'<'));
                    // A loop `for` starts a statement; an `impl … for` or
                    // `trait … for` follows an ident / `>` / lifetime.
                    let stmt_start = match self.prev_code(p) {
                        None => true,
                        Some(prev) => {
                            self.tokens[prev].kind == TokenKind::Punct
                                && matches!(
                                    self.src.as_bytes()[self.tokens[prev].start],
                                    b'{' | b'}' | b';' | b':'
                                )
                        }
                    };
                    !hrtb && stmt_start
                }
                _ => false,
            };
            if !is_loop_kw {
                continue;
            }
            // Body: first `{` at group depth 0, skipping (…)/[…] groups.
            let mut q = p + 1;
            while let Some(&ti) = self.code.get(q) {
                if self.is_punct(ti, b'(') || self.is_punct(ti, b'[') {
                    match self.matching(ti).and_then(|c| self.code_pos(c)) {
                        Some(cp) => {
                            q = cp + 1;
                            continue;
                        }
                        None => break,
                    }
                } else if self.is_punct(ti, b'{') {
                    if let Some(close) = self.matching(ti) {
                        spans.push((self.tokens[ti].start, self.tokens[close].end));
                    }
                    break;
                } else if self.is_punct(ti, b';') {
                    break;
                }
                q += 1;
            }
        }
        spans
    }

    /// Byte spans of the argument lists of `head(…)` calls, where `head`
    /// is a `::`-separated path such as `["Box", "new"]`.
    pub fn call_arg_spans(&self, path: &[&str]) -> Vec<(usize, usize)> {
        let mut pattern: Vec<&str> = Vec::new();
        for (k, seg) in path.iter().enumerate() {
            if k > 0 {
                pattern.push(":");
                pattern.push(":");
            }
            pattern.push(seg);
        }
        pattern.push("(");
        self.find_seq(&pattern)
            .into_iter()
            .filter_map(|p| {
                let open = self.code[p + pattern.len() - 1];
                let close = self.matching(open)?;
                Some((self.tokens[open].start, self.tokens[close].end))
            })
            .collect()
    }

    /// Splits the block opened by brace token `open` into statements.
    /// A statement ends at a depth-0 `;` or at the close of a depth-0
    /// `{…}` group (block expressions, nested blocks, item bodies).
    pub fn statements_in(&self, open: usize) -> Vec<Stmt> {
        let Some(close) = self.matching(open) else { return Vec::new() };
        let mut stmts = Vec::new();
        let Some(start_pos) = self.code_pos(open) else { return Vec::new() };
        let Some(end_pos) = self.code_pos(close) else { return Vec::new() };
        let mut p = start_pos + 1;
        let mut first: Option<usize> = None;
        while p < end_pos {
            let ti = self.code[p];
            if first.is_none() {
                first = Some(ti);
            }
            if self.is_punct(ti, b'(') || self.is_punct(ti, b'[') {
                if let Some(cp) = self.matching(ti).and_then(|c| self.code_pos(c)) {
                    p = cp + 1;
                    continue;
                }
            } else if self.is_punct(ti, b'{') {
                if let Some(cp) = self.matching(ti).and_then(|c| self.code_pos(c)) {
                    // A `{…}` group ends the statement unless it is
                    // followed by `;`/operator continuation; treating the
                    // close brace as a terminator is the useful
                    // approximation for guard-liveness and guard scopes.
                    let close_ti = self.code[cp];
                    let f = first.unwrap_or(ti);
                    stmts.push(self.mk_stmt(f, close_ti));
                    first = None;
                    p = cp + 1;
                    continue;
                }
            } else if self.is_punct(ti, b';') {
                let f = first.unwrap_or(ti);
                stmts.push(self.mk_stmt(f, ti));
                first = None;
            }
            p += 1;
        }
        if let Some(f) = first {
            // Trailing expression without `;`.
            let last = self.code[end_pos - 1];
            stmts.push(self.mk_stmt(f, last));
        }
        stmts
    }

    fn mk_stmt(&self, first: usize, last: usize) -> Stmt {
        Stmt {
            span: (self.tokens[first].start, self.tokens[last].end),
            first,
            last,
            is_let: self.is_ident(first, "let"),
        }
    }

    /// The innermost brace-open token whose block contains byte `offset`.
    pub fn enclosing_brace(&self, offset: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_len = usize::MAX;
        for &i in &self.code {
            if !self.is_punct(i, b'{') {
                continue;
            }
            let Some(c) = self.matching(i) else { continue };
            let (s, e) = (self.tokens[i].start, self.tokens[c].end);
            if offset > s && offset < e && e - s < best_len {
                best = Some(i);
                best_len = e - s;
            }
        }
        best
    }

    /// The statement (within the innermost enclosing block) containing
    /// byte `offset`.
    pub fn enclosing_statement(&self, offset: usize) -> Option<Stmt> {
        let open = self.enclosing_brace(offset)?;
        self.statements_in(open).into_iter().find(|s| offset >= s.span.0 && offset < s.span.1)
    }
}

/// Whether `offset` falls inside any of `spans` (half-open).
pub fn in_any(spans: &[(usize, usize)], offset: usize) -> bool {
    spans.iter().any(|&(s, e)| offset >= s && offset < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_all_and_multiline_attrs() {
        let src =
            "#[cfg(all(test, feature = \"x\"))]\nmod tests {\n    fn f() {}\n}\nfn live() {}\n";
        let f = SourceFile::parse(src);
        let spans = f.test_spans();
        assert_eq!(spans.len(), 1);
        let inner = src.find("fn f").expect("fixture");
        let live = src.find("fn live").expect("fixture");
        assert!(in_any(&spans, inner));
        assert!(!in_any(&spans, live));

        let multiline = "#[cfg(\n    test\n)]\nmod tests { fn g() {} }\n";
        let f = SourceFile::parse(multiline);
        assert!(in_any(&f.test_spans(), multiline.find("fn g").expect("fixture")));
    }

    #[test]
    fn fn_defs_find_names_params_and_bodies() {
        let src = "pub fn add(a: u32, b: u32) -> Result<u32, String> { a.checked_add(b).ok_or_else(|| \"overflow\".to_string()) }\ntrait T { fn decl(&self); }\n";
        let f = SourceFile::parse(src);
        let defs = f.fn_defs();
        assert_eq!(defs.len(), 2);
        assert_eq!(f.text(defs[0].name.expect("named")), "add");
        assert!(defs[0].body.is_some());
        assert_eq!(f.text(defs[1].name.expect("named")), "decl");
        assert!(defs[1].body.is_none(), "trait declarations have no body");
    }

    #[test]
    fn loop_spans_exclude_impl_for_and_hrtb() {
        let src = "impl Clone for Foo { fn clone(&self) -> Self { Foo } }\nfn f<F>(g: F) where F: for<'a> Fn(&'a u8) { for x in 0..3 { g(&x); } }\n";
        let f = SourceFile::parse(src);
        let spans = f.loop_body_spans();
        assert_eq!(spans.len(), 1, "only the real for loop: {spans:?}");
        assert!(in_any(&spans, src.find("g(&x)").expect("fixture")));
    }

    #[test]
    fn statements_split_on_semicolon_and_blocks() {
        let src = "fn f() { let a = 1; if a > 0 { noop(); } a + 1 }\n";
        let f = SourceFile::parse(src);
        let open = f.code.iter().copied().find(|&i| f.is_punct(i, b'{')).expect("body");
        let stmts = f.statements_in(open);
        assert_eq!(stmts.len(), 3, "{stmts:?}");
        assert!(stmts[0].is_let);
        assert!(!stmts[1].is_let);
    }

    #[test]
    fn match_seq_ignores_trivia() {
        let src = "x\n    .lock()\n    .unwrap();\n";
        let f = SourceFile::parse(src);
        let hits = f.find_seq(&[".", "lock", "(", ")", ".", "unwrap", "(", ")"]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn call_arg_spans_match_paths() {
        let src = "let b = Box::new(|g| panic!(\"{g}\"));\nlet v = Vec::new();\n";
        let f = SourceFile::parse(src);
        let spans = f.call_arg_spans(&["Box", "new"]);
        assert_eq!(spans.len(), 1);
        assert!(in_any(&spans, src.find("panic!").expect("fixture")));
    }
}
