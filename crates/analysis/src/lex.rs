//! A lossless, dependency-free Rust lexer.
//!
//! [`lex`] turns source text into a flat [`Token`] stream that **tiles the
//! input exactly**: every byte of the source belongs to exactly one token,
//! tokens appear in source order, and re-concatenating their texts
//! reproduces the file byte-for-byte. That invariant (checked for every
//! `.rs` file in the workspace by `tests/lex_lossless.rs`) is what lets the
//! lint and audit passes reason about spans without ever re-reading the
//! file through a second, subtly different scanner.
//!
//! The token model is deliberately coarse — single-byte punctuation, no
//! keyword table, no operator gluing — because the consumers
//! ([`crate::syntax`], [`crate::lint`], [`crate::concurrency`]) do their
//! own structural matching and a `>>` that closes two generic lists must
//! count as two closing angles, not one shift.
//!
//! What the lexer *does* resolve precisely, because line scanners cannot:
//!
//! - string literals, raw strings (`r#"…"#` with any number of hashes),
//!   byte strings, char literals, and the char-vs-lifetime ambiguity;
//! - line and block comments (nested), with doc-ness (`///`, `//!`,
//!   `/**`, `/*!`) recorded so escape parsing can tell prose from code;
//! - numeric literals including float exponents (`1e-12`) and suffixes,
//!   so a guard token like `1e-9` is one token, not a `1`, an ident `e`,
//!   and a minus.

use std::fmt;

/// What a token is. See the module docs for the granularity contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (also raw `r#ident`).
    Ident,
    /// A lifetime such as `'a` or `'static` (quote included).
    Lifetime,
    /// Integer literal, any radix, suffix included.
    Int,
    /// Float literal, exponent and suffix included.
    Float,
    /// `"…"` or `b"…"` string literal, quotes included.
    Str,
    /// `r"…"` / `r#"…"#` / `br#"…"#` raw string literal.
    RawStr,
    /// `'x'` or `b'x'` char/byte literal.
    Char,
    /// `// …` line comment; `doc` distinguishes `///` and `//!` prose.
    LineComment {
        /// True for `///` and `//!` documentation comments.
        doc: bool,
    },
    /// `/* … */` block comment (nesting handled); `doc` marks `/**`, `/*!`.
    BlockComment {
        /// True for `/**` and `/*!` documentation comments.
        doc: bool,
    },
    /// A run of whitespace bytes.
    Whitespace,
    /// One punctuation byte (`.`, `:`, `<`, …). Never glued: `::` is two.
    Punct,
    /// Any byte the lexer does not classify (kept so the stream stays
    /// lossless even on malformed input).
    Unknown,
}

impl TokenKind {
    /// Whether this kind is trivia (whitespace or any comment) that code
    /// scanners skip over.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// Whether this kind is a comment (line or block, doc or plain).
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment { .. } | TokenKind::BlockComment { .. })
    }
}

/// One token: a kind plus the half-open byte span `[start, end)` it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{}..{}", self.kind, self.start, self.end)
    }
}

/// Lexes `src` into a stream of tokens that tiles it exactly.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { b: src.as_bytes(), i: 0 }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut tokens = Vec::new();
        while self.i < self.b.len() {
            let start = self.i;
            let kind = self.next_kind();
            debug_assert!(self.i > start, "lexer must always make progress");
            tokens.push(Token { kind, start, end: self.i });
        }
        tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Consumes one token's worth of bytes and returns its kind. `self.i`
    /// sits on the token's first byte on entry and one past its last on
    /// exit.
    fn next_kind(&mut self) -> TokenKind {
        let c = self.b[self.i];
        if c.is_ascii_whitespace() {
            while self.peek(0).is_some_and(|b| b.is_ascii_whitespace()) {
                self.i += 1;
            }
            return TokenKind::Whitespace;
        }
        if c == b'/' && self.peek(1) == Some(b'/') {
            return self.line_comment();
        }
        if c == b'/' && self.peek(1) == Some(b'*') {
            return self.block_comment();
        }
        // Raw strings and raw identifiers: r"…", r#"…"#, br"…", r#ident.
        if c == b'r' || c == b'b' {
            if let Some(kind) = self.try_raw_or_byte_prefixed() {
                return kind;
            }
        }
        if c == b'"' {
            self.i += 1;
            self.consume_str_body();
            return TokenKind::Str;
        }
        if c == b'\'' {
            return self.char_or_lifetime();
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        if is_ident_start(c) {
            self.i += 1;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.i += 1;
            }
            return TokenKind::Ident;
        }
        self.i += 1;
        if c.is_ascii_punctuation() {
            TokenKind::Punct
        } else {
            TokenKind::Unknown
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///` is outer doc, `//!` inner doc — but `////…` is plain again.
        let doc = (self.peek(2) == Some(b'/') && self.peek(3) != Some(b'/'))
            || self.peek(2) == Some(b'!');
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.i += 1;
        }
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        let doc = (self.peek(2) == Some(b'*') && self.peek(3) != Some(b'*'))
            || self.peek(2) == Some(b'!');
        self.i += 2;
        let mut depth = 1u32;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.i += 1;
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// Handles the `r` / `b` prefixed forms: raw strings, byte strings,
    /// byte chars and raw identifiers. Returns `None` when the `r`/`b` is
    /// just the first letter of a plain identifier.
    fn try_raw_or_byte_prefixed(&mut self) -> Option<TokenKind> {
        let c = self.b[self.i];
        // b"…" byte string: same body rules as a plain string.
        if c == b'b' && self.peek(1) == Some(b'"') {
            self.i += 2;
            self.consume_str_body();
            return Some(TokenKind::Str);
        }
        // b'x' byte char.
        if c == b'b' && self.peek(1) == Some(b'\'') {
            self.i += 1; // now on the quote; reuse the char scanner
            return match self.char_or_lifetime() {
                TokenKind::Char => Some(TokenKind::Char),
                // `b'static`-style text cannot occur in valid Rust; treat
                // whatever was consumed as an unknown-ish char token.
                _ => Some(TokenKind::Char),
            };
        }
        // r"…" / r#"…"# / br#"…"# raw (byte) strings, r#ident raw idents.
        let after_b = if c == b'b' && self.peek(1) == Some(b'r') { 1 } else { 0 };
        if c == b'r' || after_b == 1 {
            let mut j = self.i + after_b + 1;
            let mut hashes = 0usize;
            while self.b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if self.b.get(j) == Some(&b'"') {
                // Raw string: scan for `"` followed by `hashes` hashes.
                j += 1;
                while j < self.b.len() {
                    if self.b[j] == b'"'
                        && self.b[j + 1..].iter().take_while(|&&h| h == b'#').count() >= hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                self.i = j.min(self.b.len());
                return Some(TokenKind::RawStr);
            }
            if c == b'r'
                && after_b == 0
                && hashes == 1
                && self.b.get(j).is_some_and(|&x| is_ident_start(x))
            {
                // r#ident raw identifier.
                self.i = j;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.i += 1;
                }
                return Some(TokenKind::Ident);
            }
        }
        None
    }

    /// Consumes a string body after the opening quote, through the closing
    /// quote, honouring backslash escapes.
    fn consume_str_body(&mut self) {
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i = (self.i + 2).min(self.b.len()),
                b'"' => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Disambiguates `'x'` / `'\n'` char literals from `'a` lifetimes.
    fn char_or_lifetime(&mut self) -> TokenKind {
        // On entry self.i is at the opening quote.
        let q = self.i;
        self.i += 1;
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char: scan to the closing quote.
                self.i += 2; // past the backslash and the escaped byte
                while self.peek(0).is_some_and(|b| b != b'\'' && b != b'\n') {
                    self.i += 1;
                }
                if self.peek(0) == Some(b'\'') {
                    self.i += 1;
                }
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'a / 'static (lifetime): a char
                // has a quote right after one ident char.
                if self.b.get(q + 2) == Some(&b'\'')
                    && !is_ident_continue(*self.b.get(q + 3).unwrap_or(&b' '))
                {
                    self.i = q + 3;
                    TokenKind::Char
                } else {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.i += 1;
                    }
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // Something like '(' — a char literal of a punct byte.
                if self.b.get(q + 2) == Some(&b'\'') {
                    self.i = q + 3;
                } else {
                    self.i += 1;
                }
                TokenKind::Char
            }
            None => TokenKind::Punct,
        }
    }

    fn number(&mut self) -> TokenKind {
        let radix_prefixed = self.peek(0) == Some(b'0')
            && matches!(
                self.peek(1),
                Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X') | Some(b'O') | Some(b'B')
            );
        if radix_prefixed {
            self.i += 2;
            while self.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
                self.i += 1;
            }
            return TokenKind::Int;
        }
        let mut float = false;
        while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            self.i += 1;
        }
        // A fractional part only if the dot is followed by a digit or ends
        // the number (`1.`), but NOT `1..2` (range) or `1.max()` (method).
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    float = true;
                    self.i += 1;
                    while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                        self.i += 1;
                    }
                }
                Some(b'.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.i += 1;
                }
            }
        }
        // Exponent: e / E, optional sign, at least one digit.
        if matches!(self.peek(0), Some(b'e') | Some(b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+') | Some(b'-')));
            if self.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                float = true;
                self.i += 1 + sign;
                while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    self.i += 1;
                }
            }
        }
        // Suffix (f64, usize, …) glues onto the literal.
        let before_suffix = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.i += 1;
        }
        let suffix = &self.b[before_suffix..self.i];
        if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }
}

/// First byte of an identifier. Non-ASCII bytes count as ident material so
/// UTF-8 sequences never get split across token boundaries.
fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

/// Continuation byte of an identifier.
fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src))).collect()
    }

    fn reassemble(src: &str) -> String {
        lex(src).iter().map(|t| t.text(src)).collect()
    }

    #[test]
    fn tiles_the_source_exactly() {
        let srcs = [
            "fn main() { println!(\"hi\"); }",
            "let r = r#\"raw \" string\"#; // trailing",
            "let c = '\\''; let lt: &'static str = \"\";",
            "/* block /* nested */ still */ fn f() {}",
            "let x = 1e-12; let y = 0xFF_usize; let z = 1.5f32; let r = 1..2;",
            "let unicode = \"héllo\"; // commentaire é\n",
            "#[cfg(all(test, feature = \"x\"))]\nmod tests {}\n",
        ];
        for src in srcs {
            assert_eq!(reassemble(src), src, "lossless tiling failed for {src:?}");
        }
    }

    #[test]
    fn classifies_strings_and_chars() {
        let toks = kinds("let s = \"a\\\"b\"; let c = 'x'; let e = '\\n'; let lt = &'a str;");
        assert!(toks.contains(&(TokenKind::Str, "\"a\\\"b\"")));
        assert!(toks.contains(&(TokenKind::Char, "'x'")));
        assert!(toks.contains(&(TokenKind::Char, "'\\n'")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
    }

    #[test]
    fn classifies_raw_strings_and_raw_idents() {
        let toks = kinds("let a = r\"x\"; let b = r#\"y \" z\"#; let c = br#\"w\"#; let d = r#fn;");
        assert!(toks.contains(&(TokenKind::RawStr, "r\"x\"")));
        assert!(toks.contains(&(TokenKind::RawStr, "r#\"y \" z\"#")));
        assert!(toks.contains(&(TokenKind::RawStr, "br#\"w\"#")));
        assert!(toks.contains(&(TokenKind::Ident, "r#fn")));
    }

    #[test]
    fn classifies_numbers() {
        let toks = kinds("1 1.5 1e-12 2.5E+3 0xFF 0b10 1_000 1.0f64 3usize 1..2 1.max(2)");
        assert!(toks.contains(&(TokenKind::Int, "1")));
        assert!(toks.contains(&(TokenKind::Float, "1.5")));
        assert!(toks.contains(&(TokenKind::Float, "1e-12")));
        assert!(toks.contains(&(TokenKind::Float, "2.5E+3")));
        assert!(toks.contains(&(TokenKind::Int, "0xFF")));
        assert!(toks.contains(&(TokenKind::Int, "0b10")));
        assert!(toks.contains(&(TokenKind::Int, "1_000")));
        assert!(toks.contains(&(TokenKind::Float, "1.0f64")));
        assert!(toks.contains(&(TokenKind::Int, "3usize")));
        // `1..2` keeps the ints apart; `1.max` stays an int plus a call.
        assert!(toks.contains(&(TokenKind::Ident, "max")));
    }

    #[test]
    fn comment_docness_recorded() {
        let toks =
            kinds("/// doc\n//! inner\n// plain\n//// plain too\n/** blockdoc */ /* plain */");
        let docs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| {
                matches!(
                    k,
                    TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
                )
            })
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(docs, vec!["/// doc", "//! inner", "/** blockdoc */"]);
    }

    #[test]
    fn punctuation_is_never_glued() {
        let toks = kinds("a::b->c >> d");
        let puncts: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Punct).map(|(_, s)| *s).collect();
        assert_eq!(puncts, vec![":", ":", "-", ">", ">", ">"]);
    }
}
