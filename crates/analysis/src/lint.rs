//! Static lint driver for the PUP workspace.
//!
//! The driver walks every `crates/*/src` tree and enforces four repo
//! conventions that `rustc`/`clippy` either cannot express or cannot scope
//! the way we need:
//!
//! | rule | meaning |
//! |------|---------|
//! | `unwrap-in-lib` | no `.unwrap()` / `.expect(` in non-test library code |
//! | `panic-in-backward` | no `panic!` inside backward closures of `ops.rs` / `autograd.rs` |
//! | `undocumented-pub-op` | every `pub fn` in the tensor op module has a doc comment |
//! | `clone-in-loop` | no `.clone()` / `.value_clone()` inside loop bodies (perf smell) |
//!
//! A site opts out with `// pup-lint: allow(<rule>)` on the offending line
//! or on the line directly above it. The scanner works on a *masked* copy of
//! each file — comments, string literals and char literals are blanked out —
//! so needles inside doc examples or messages never trigger, and `#[cfg(test)]`
//! regions are excluded by brace matching.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules the driver enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` in non-test library code.
    UnwrapInLib,
    /// `panic!` inside a backward closure in `ops.rs` / `autograd.rs`.
    PanicInBackward,
    /// `pub fn` in the tensor op module without a doc comment.
    UndocumentedPubOp,
    /// `.clone()` / `.value_clone()` inside a loop body.
    CloneInLoop,
}

impl Rule {
    /// The rule's name as used in `// pup-lint: allow(<name>)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::PanicInBackward => "panic-in-backward",
            Rule::UndocumentedPubOp => "undocumented-pub-op",
            Rule::CloneInLoop => "clone-in-loop",
        }
    }
}

/// A single lint finding, pointing at `file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule.name(), self.message)
    }
}

/// Result of a full workspace walk.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

/// Lints every `.rs` file under `<root>/crates/*/src`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut diagnostics = Vec::new();
    for file in &files {
        let source = fs::read_to_string(file)?;
        diagnostics.extend(lint_source(file, &source));
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport { diagnostics, files_checked: files.len() })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints a single file's source text. Exposed for tests; `path` only
/// influences the path-scoped rules (`panic-in-backward`,
/// `undocumented-pub-op`) and the reported location.
pub fn lint_source(path: &Path, source: &str) -> Vec<Diagnostic> {
    let masked = mask_non_code(source);
    let m = masked.as_bytes();
    let line_starts = line_starts(source);
    let allows = parse_allows(source);
    let test_spans = attribute_spans(m, b"#[cfg(test)]");
    let mut test_fn_spans = attribute_spans(m, b"#[test]");
    let mut all_test_spans = test_spans;
    all_test_spans.append(&mut test_fn_spans);
    let loop_spans = loop_body_spans(m);
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let is_tape_file = file_name == "ops.rs" || file_name == "autograd.rs";
    let is_op_module = path.ends_with("tensor/src/ops.rs");

    let mut diags = Vec::new();
    let mut push = |offset: usize, rule: Rule, message: String| {
        let line = line_of(&line_starts, offset);
        if !is_allowed(&allows, line, rule) {
            diags.push(Diagnostic { file: path.to_path_buf(), line, rule, message });
        }
    };

    for needle in [".unwrap()", ".expect("] {
        for at in find_all(m, needle.as_bytes()) {
            if !in_any_span(&all_test_spans, at) {
                push(
                    at,
                    Rule::UnwrapInLib,
                    format!(
                        "`{needle}` in non-test library code; return an error or \
                         annotate with `// pup-lint: allow(unwrap-in-lib)`"
                    ),
                );
            }
        }
    }

    if is_tape_file {
        let backward_spans = paren_spans(m, b"Box::new(");
        for at in find_all(m, b"panic!") {
            if in_any_span(&backward_spans, at) && !in_any_span(&all_test_spans, at) {
                push(
                    at,
                    Rule::PanicInBackward,
                    "`panic!` inside a backward closure: a broken gradient must \
                     surface through the tape auditor, not ad-hoc panics"
                        .to_string(),
                );
            }
        }
    }

    for needle in [".clone()", ".value_clone()"] {
        for at in find_all(m, needle.as_bytes()) {
            if in_any_span(&loop_spans, at) && !in_any_span(&all_test_spans, at) {
                push(
                    at,
                    Rule::CloneInLoop,
                    format!(
                        "`{needle}` inside a loop body allocates per iteration; hoist \
                         it or annotate with `// pup-lint: allow(clone-in-loop)`"
                    ),
                );
            }
        }
    }

    if is_op_module {
        diags.extend(undocumented_pub_fns(path, source, &masked, &all_test_spans, &allows));
    }

    diags
}

/// Finds `pub fn` declarations without a preceding `///` doc comment.
fn undocumented_pub_fns(
    path: &Path,
    source: &str,
    masked: &str,
    test_spans: &[(usize, usize)],
    allows: &[(usize, Vec<String>)],
) -> Vec<Diagnostic> {
    let lines: Vec<&str> = source.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let mut offset = 0usize;
    let mut line_offsets = Vec::with_capacity(masked_lines.len());
    for l in &masked_lines {
        line_offsets.push(offset);
        offset += l.len() + 1;
    }
    let mut diags = Vec::new();
    for (idx, mline) in masked_lines.iter().enumerate() {
        let trimmed = mline.trim_start();
        if !trimmed.starts_with("pub fn ") || in_any_span(test_spans, line_offsets[idx]) {
            continue;
        }
        let fn_name: String = trimmed["pub fn ".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // Walk upward over attributes and blank lines to the nearest
        // meaningful line; it must be a doc comment.
        let mut j = idx;
        let documented = loop {
            if j == 0 {
                break false;
            }
            j -= 1;
            let above = lines.get(j).map_or("", |l| l.trim_start());
            if above.is_empty() || above.starts_with("#[") {
                continue;
            }
            break above.starts_with("///");
        };
        if !documented && !is_allowed(allows, idx + 1, Rule::UndocumentedPubOp) {
            diags.push(Diagnostic {
                file: path.to_path_buf(),
                line: idx + 1,
                rule: Rule::UndocumentedPubOp,
                message: format!("public tensor op `{fn_name}` has no doc comment"),
            });
        }
    }
    diags
}

/// Byte offsets where each line starts (for offset → line translation).
fn line_starts(source: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line containing byte `offset`.
fn line_of(starts: &[usize], offset: usize) -> usize {
    starts.partition_point(|&s| s <= offset)
}

/// Collects `// pup-lint: allow(a, b)` comments as `(line, rule-names)`.
fn parse_allows(source: &str) -> Vec<(usize, Vec<String>)> {
    let mut allows = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let Some(at) = line.find("pup-lint: allow(") else { continue };
        let rest = &line[at + "pup-lint: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let names = rest[..close].split(',').map(|s| s.trim().to_string()).collect();
        allows.push((idx + 1, names));
    }
    allows
}

/// An allow on line `n` covers lines `n` and `n + 1`.
fn is_allowed(allows: &[(usize, Vec<String>)], line: usize, rule: Rule) -> bool {
    allows
        .iter()
        .any(|(l, names)| (*l == line || *l + 1 == line) && names.iter().any(|n| n == rule.name()))
}

fn find_all(haystack: &[u8], needle: &[u8]) -> Vec<usize> {
    let mut hits = Vec::new();
    if needle.is_empty() || haystack.len() < needle.len() {
        return hits;
    }
    for i in 0..=haystack.len() - needle.len() {
        if &haystack[i..i + needle.len()] == needle {
            hits.push(i);
        }
    }
    hits
}

fn in_any_span(spans: &[(usize, usize)], offset: usize) -> bool {
    spans.iter().any(|&(s, e)| offset >= s && offset < e)
}

/// Brace-delimited spans of the item following each occurrence of `attr`
/// (e.g. the `mod tests { ... }` after `#[cfg(test)]`).
fn attribute_spans(masked: &[u8], attr: &[u8]) -> Vec<(usize, usize)> {
    find_all(masked, attr)
        .into_iter()
        .filter_map(|at| {
            let open = masked[at..].iter().position(|&b| b == b'{')? + at;
            Some((open, matching_delim(masked, open, b'{', b'}')))
        })
        .collect()
}

/// Paren-delimited spans following each occurrence of `prefix` (which must
/// end in `(`), e.g. the whole `Box::new(...)` argument list.
fn paren_spans(masked: &[u8], prefix: &[u8]) -> Vec<(usize, usize)> {
    find_all(masked, prefix)
        .into_iter()
        .map(|at| {
            let open = at + prefix.len() - 1;
            (open, matching_delim(masked, open, b'(', b')'))
        })
        .collect()
}

/// Offset one past the delimiter matching the one at `open`.
fn matching_delim(masked: &[u8], open: usize, oc: u8, cc: u8) -> usize {
    let mut depth = 0i32;
    for (j, &b) in masked.iter().enumerate().skip(open) {
        if b == oc {
            depth += 1;
        } else if b == cc {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    masked.len()
}

/// Body spans of `for` / `while` / `loop` statements. `for` inside an
/// `impl Trait for Type` header is skipped by scanning back to the start of
/// the current item.
fn loop_body_spans(masked: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (at, kw) in keyword_positions(masked) {
        if kw == "for" && is_impl_for(masked, at) {
            continue;
        }
        // The body is the first `{` after the keyword at bracket depth 0
        // (skipping over any closure braces nested in parens).
        let mut depth = 0i32;
        let mut open = None;
        for (j, &b) in masked.iter().enumerate().skip(at + kw.len()) {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(j);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
        }
        if let Some(open) = open {
            spans.push((open, matching_delim(masked, open, b'{', b'}')));
        }
    }
    spans
}

/// Whether the `for` at `at` belongs to an `impl ... for ...` header: scan
/// back to the previous `;`/`{`/`}` and look for an `impl` token.
fn is_impl_for(masked: &[u8], at: usize) -> bool {
    let start = masked[..at]
        .iter()
        .rposition(|&b| b == b';' || b == b'{' || b == b'}')
        .map_or(0, |p| p + 1);
    keyword_positions_in(&masked[start..at], &["impl"]).next().is_some()
}

fn keyword_positions(masked: &[u8]) -> Vec<(usize, &'static str)> {
    keyword_positions_in(masked, &["for", "while", "loop"]).collect()
}

fn keyword_positions_in<'a>(
    masked: &'a [u8],
    keywords: &'a [&'static str],
) -> impl Iterator<Item = (usize, &'static str)> + 'a {
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < masked.len() {
            let b = masked[i];
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < masked.len() && (masked[i].is_ascii_alphanumeric() || masked[i] == b'_') {
                    i += 1;
                }
                let word = &masked[start..i];
                if let Some(kw) = keywords.iter().find(|k| k.as_bytes() == word) {
                    return Some((start, *kw));
                }
            } else {
                i += 1;
            }
        }
        None
    })
}

/// Blanks out comments, string literals and char literals, preserving byte
/// offsets and newlines so positions map 1:1 back to the original source.
fn mask_non_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = b.iter().map(|&c| if c == b'\n' { b'\n' } else { b' ' }).collect();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == b'"' {
            i += 1;
            while i < b.len() && b[i] != b'"' {
                i += if b[i] == b'\\' { 2 } else { 1 };
            }
            i += 1;
        } else if c == b'r'
            && matches!(b.get(i + 1), Some(&b'"') | Some(&b'#'))
            && (i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_'))
        {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                j += 1;
                // Find `"` followed by `hashes` hash marks.
                while j < b.len() {
                    if b[j] == b'"'
                        && b[j + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                i = j;
            } else {
                out[i] = c;
                i += 1;
            }
        } else if c == b'\'' {
            // Char literal (incl. escapes) vs. lifetime.
            if b.get(i + 1) == Some(&b'\\') {
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                i = j + 1;
            } else if b.get(i + 2) == Some(&b'\'') {
                i += 3;
            } else {
                out[i] = c;
                i += 1;
            }
        } else {
            out[i] = c;
            i += 1;
        }
    }
    // Only ASCII bytes were blanked, so the masked text is valid UTF-8.
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(name: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(Path::new(name), src)
    }

    #[test]
    fn unwrap_flagged_in_lib_code_only() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnwrapInLib);
        assert_eq!(d[0].line, 2);

        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n";
        assert!(lint_str("lib.rs", test_src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_on_same_or_previous_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // pup-lint: allow(unwrap-in-lib)\n";
        assert!(lint_str("lib.rs", same).is_empty());
        let above =
            "// pup-lint: allow(unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_str("lib.rs", above).is_empty());
        let wrong_rule =
            "// pup-lint: allow(clone-in-loop)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_str("lib.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn needles_inside_strings_and_comments_ignored() {
        let src = "fn f() -> &'static str {\n    // .unwrap() in a comment\n    \".unwrap() in a string\"\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    #[test]
    fn panic_in_backward_scoped_to_tape_files() {
        let src =
            "fn op() {\n    let b = Box::new(|g: &u32| {\n        panic!(\"bad\");\n    });\n}\n";
        let d = lint_str("ops.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::PanicInBackward);
        assert_eq!(d[0].line, 3);
        // Same text in a non-tape file: not this rule's business.
        assert!(lint_str("metrics.rs", src).is_empty());
        // panic! outside the closure is not this rule's business either.
        let outside = "fn op() {\n    panic!(\"bad\");\n}\n";
        assert!(lint_str("ops.rs", outside).is_empty());
    }

    #[test]
    fn clone_in_loop_flagged() {
        let src = "fn f(v: &[Vec<u32>]) {\n    for x in v {\n        let y = x.clone();\n        drop(y);\n    }\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::CloneInLoop);
        assert_eq!(d[0].line, 3);
        let outside =
            "fn f(v: &Vec<u32>) {\n    let y = v.clone();\n    for x in &y { drop(x); }\n}\n";
        assert!(lint_str("lib.rs", outside).is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "impl Clone for Foo {\n    fn clone(&self) -> Self { self.inner.clone() }\n}\n";
        // The `.clone()` is inside an impl body, not a loop body.
        assert!(lint_str("lib.rs", src).is_empty());
    }

    #[test]
    fn undocumented_pub_op_only_in_tensor_ops_module() {
        let src = "/// Documented.\npub fn good() {}\n\npub fn bad() {}\n";
        let d = lint_source(Path::new("crates/tensor/src/ops.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UndocumentedPubOp);
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("`bad`"));
        // Other files are covered by rustc's missing_docs instead.
        assert!(lint_str("other.rs", src).is_empty());
    }

    #[test]
    fn doc_comment_may_be_separated_by_attributes() {
        let src = "/// Documented.\n#[inline]\npub fn good() {}\n";
        assert!(lint_source(Path::new("crates/tensor/src/ops.rs"), src).is_empty());
    }

    #[test]
    fn raw_strings_and_char_literals_masked() {
        let src = "fn f() {\n    let s = r#\"x.unwrap()\"#;\n    let c = '\\'';\n    let lt: &'static str = \"\";\n    drop((s, c, lt));\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }
}
