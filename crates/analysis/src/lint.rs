//! Token-based static lint driver for the PUP workspace.
//!
//! The driver walks every `crates/*/src` tree and enforces repo conventions
//! that `rustc`/`clippy` either cannot express or cannot scope the way we
//! need:
//!
//! | rule | meaning |
//! |------|---------|
//! | `unwrap-in-lib` | no `.unwrap()` / `.expect(` in non-test library code |
//! | `mutex-unwrap` | no `.lock().unwrap()`-style poisoned-lock panics; recover with `unwrap_or_else(PoisonError::into_inner)` |
//! | `panic-in-backward` | no `panic!` inside backward closures of `ops.rs` / `autograd.rs` |
//! | `undocumented-pub-op` | every `pub fn` in the tensor op module has a doc comment |
//! | `clone-in-loop` | no `.clone()` / `.value_clone()` inside loop bodies (perf smell) |
//! | `unguarded-ln` | no `.ln()`/`.log2()`/`.log10()` or division by a tape value without an epsilon/clamp guard in model/loss code |
//! | `float-eq` | no `==`/`!=` between `f64` expressions outside tests |
//! | `crash-unsafe-io` | no `fs::write`/`File::create` in a function that never calls `rename` (write-temp-then-rename keeps saves atomic) |
//! | `raw-print-in-lib` | no `println!`/`eprintln!` in library code (bins and tests exempt); telemetry goes through `pup-obs`, data through return values |
//! | `untraced-hot-root` | every `// pup-hot:` root fn must open a telemetry span (`pup_obs::span(..)` or a trace-context `.span(..)`) so hot-path work is visible in traces |
//! | `blocking-io-without-timeout` | no socket reads/writes in a function that never arms a timeout or deadline (bins and tests exempt); one dead peer must not park a thread forever |
//! | `stale-allow` | (`--strict` only) an allow escape that suppresses nothing |
//!
//! Every rule matches **code tokens** from the [`crate::lex`] lexer inside
//! scopes computed by [`crate::syntax`] — not lines, not regexes. That
//! kills the classic line-scanner false-positive/negative classes for
//! good: needles inside string literals, doc comments, or raw strings can
//! never fire; `#[cfg(all(test, …))]` and multi-line attributes exclude
//! test code correctly; method chains and comparisons split across lines
//! by rustfmt are still seen whole; and an identifier that merely
//! *contains* a guard word (`unclamped`) no longer quiets `unguarded-ln`.
//!
//! A site opts out with `// pup-lint: allow(<rule>)` on the offending line
//! or on the line directly above it; the escape must live in a real plain
//! `//` comment (an allow spelled inside a string literal or a doc comment
//! is prose, not an escape). In strict mode every allow escape must still
//! suppress at least one finding; stale escapes are reported as
//! `stale-allow` violations so they cannot rot in place — and
//! [`crate::fix`] can delete them mechanically.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lex::TokenKind;
use crate::syntax::{in_any, SourceFile, Stmt};

/// The lint rules the driver enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` in non-test library code.
    UnwrapInLib,
    /// `.lock().unwrap()` / `.read().expect(`-style poisoned-lock panics
    /// in non-test library code.
    MutexUnwrap,
    /// `panic!` inside a backward closure in `ops.rs` / `autograd.rs`.
    PanicInBackward,
    /// `pub fn` in the tensor op module without a doc comment.
    UndocumentedPubOp,
    /// `.clone()` / `.value_clone()` inside a loop body.
    CloneInLoop,
    /// Unguarded `.ln()` / `.log2()` / `.log10()` or division by a
    /// tape-derived value in model/loss code.
    UnguardedLn,
    /// `==` / `!=` between `f64` expressions outside tests.
    FloatEq,
    /// `fs::write` / `File::create` in a function that never calls
    /// `rename`: a crash mid-write tears the target file.
    CrashUnsafeIo,
    /// `println!` / `eprintln!` in crate library code (bins/tests exempt):
    /// structured output belongs in `pup-obs` telemetry or return values.
    RawPrintInLib,
    /// A lossy `as` cast (`as u32`, `as f32`, float `as usize`) in
    /// non-test code.
    AsCastTruncation,
    /// A `// pup-hot:` root fn that never opens a telemetry span: the
    /// hottest paths are exactly the ones a trace must not go dark on.
    UntracedHotRoot,
    /// Socket reads/writes in a function that never arms a timeout or
    /// deadline: one dead peer can park the thread forever.
    BlockingIoNoTimeout,
    /// An allow escape that no longer suppresses any finding (strict mode).
    StaleAllow,
}

impl Rule {
    /// Every rule an allow escape may name.
    pub const ALLOWABLE: &'static [Rule] = &[
        Rule::UnwrapInLib,
        Rule::MutexUnwrap,
        Rule::PanicInBackward,
        Rule::UndocumentedPubOp,
        Rule::CloneInLoop,
        Rule::UnguardedLn,
        Rule::FloatEq,
        Rule::CrashUnsafeIo,
        Rule::RawPrintInLib,
        Rule::AsCastTruncation,
        Rule::UntracedHotRoot,
        Rule::BlockingIoNoTimeout,
    ];

    /// The rule's name as used in `// pup-lint: allow(<name>)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::MutexUnwrap => "mutex-unwrap",
            Rule::PanicInBackward => "panic-in-backward",
            Rule::UndocumentedPubOp => "undocumented-pub-op",
            Rule::CloneInLoop => "clone-in-loop",
            Rule::UnguardedLn => "unguarded-ln",
            Rule::FloatEq => "float-eq",
            Rule::CrashUnsafeIo => "crash-unsafe-io",
            Rule::RawPrintInLib => "raw-print-in-lib",
            Rule::AsCastTruncation => "as-cast-truncation",
            Rule::UntracedHotRoot => "untraced-hot-root",
            Rule::BlockingIoNoTimeout => "blocking-io-without-timeout",
            Rule::StaleAllow => "stale-allow",
        }
    }
}

/// A single lint finding, pointing at `file:line` with a byte span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Byte span `[start, end)` of the offending tokens.
    pub span: (usize, usize),
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule.name(), self.message)
    }
}

/// Result of a full workspace walk.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

/// Lints every `.rs` file under `<root>/crates/*/src` (non-strict).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    lint_workspace_with(root, false)
}

/// Lints every `.rs` file under `<root>/crates/*/src`; with `strict`, allow
/// escapes that suppress nothing are reported as `stale-allow` violations.
pub fn lint_workspace_with(root: &Path, strict: bool) -> io::Result<LintReport> {
    let files = workspace_rs_files(root)?;
    let mut diagnostics = Vec::new();
    for file in &files {
        let source = fs::read_to_string(file)?;
        diagnostics.extend(lint_source_with(file, &source, strict));
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport { diagnostics, files_checked: files.len() })
}

/// Every `.rs` file under `<root>/crates/*/src`, sorted.
pub fn workspace_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints a single file's source text (non-strict). Exposed for tests;
/// `path` only influences the path-scoped rules (`panic-in-backward`,
/// `undocumented-pub-op`, `unguarded-ln`, `raw-print-in-lib`) and the
/// reported location.
pub fn lint_source(path: &Path, source: &str) -> Vec<Diagnostic> {
    lint_source_with(path, source, false)
}

/// A candidate finding before allow-escape filtering.
struct Candidate {
    offset: usize,
    end: usize,
    rule: Rule,
    message: String,
}

/// One `// pup-lint: allow(a, b)` escape comment.
pub struct AllowSite {
    /// 1-based line of the comment.
    pub line: usize,
    /// Byte span of the whole comment token.
    pub span: (usize, usize),
    /// The rule names listed in the escape, in order.
    pub names: Vec<String>,
}

/// Collects `// pup-lint: allow(…)` escapes from plain (non-doc) comments.
/// An allow spelled in a string literal or doc comment is prose.
pub fn parse_allows(file: &SourceFile<'_>) -> Vec<AllowSite> {
    const MARKER: &str = "pup-lint: allow(";
    let mut allows = Vec::new();
    for t in &file.tokens {
        let plain = matches!(
            t.kind,
            TokenKind::LineComment { doc: false } | TokenKind::BlockComment { doc: false }
        );
        if !plain {
            continue;
        }
        let text = t.text(file.src);
        let Some(at) = text.find(MARKER) else { continue };
        let rest = &text[at + MARKER.len()..];
        let Some(close) = rest.find(')') else { continue };
        let names = rest[..close].split(',').map(|s| s.trim().to_string()).collect();
        allows.push(AllowSite { line: file.line_of(t.start + at), span: (t.start, t.end), names });
    }
    allows
}

/// Lints a single file's source text; with `strict`, stale allow escapes
/// are reported too.
pub fn lint_source_with(path: &Path, source: &str, strict: bool) -> Vec<Diagnostic> {
    analyze_source(path, source, strict).diagnostics
}

/// Full single-file analysis: the diagnostics plus, for every allow
/// escape, which of its names actually suppressed a finding. `fix` uses
/// the liveness map to delete stale escapes mechanically.
pub struct Analysis {
    /// The diagnostics `lint_source_with` would report.
    pub diagnostics: Vec<Diagnostic>,
    /// Every `// pup-lint: allow(…)` escape in the file.
    pub allows: Vec<AllowSite>,
    /// `live[i][j]`: whether `allows[i].names[j]` suppressed ≥1 finding.
    /// Unknown rule names are never live.
    pub live: Vec<Vec<bool>>,
}

/// Lints a single file and reports allow-escape liveness alongside the
/// diagnostics.
pub fn analyze_source(path: &Path, source: &str, strict: bool) -> Analysis {
    let file = SourceFile::parse(source);
    let allows = parse_allows(&file);
    let test_spans = file.test_spans();
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let path_str = path.to_string_lossy().replace('\\', "/");
    let scope = PathScope {
        is_tape_file: file_name == "ops.rs" || file_name == "autograd.rs",
        is_op_module: path.ends_with("tensor/src/ops.rs"),
        is_model_or_loss: path_str.contains("models/src") || path_str.contains("tensor/src"),
        is_bin: path_str.contains("/src/bin/") || file_name == "main.rs",
    };

    let mut candidates = Vec::new();
    unwrap_rules(&file, &test_spans, &mut candidates);
    if scope.is_tape_file {
        panic_in_backward(&file, &test_spans, &mut candidates);
    }
    clone_in_loop(&file, &test_spans, &mut candidates);
    if !scope.is_bin {
        raw_print_in_lib(&file, &test_spans, &mut candidates);
    }
    if scope.is_op_module {
        undocumented_pub_fns(&file, &test_spans, &mut candidates);
    }
    if scope.is_model_or_loss {
        unguarded_ln(&file, &test_spans, &mut candidates);
    }
    float_eq(&file, &test_spans, &mut candidates);
    crash_unsafe_io(&file, &test_spans, &mut candidates);
    as_cast_truncation(&file, &test_spans, &mut candidates);
    untraced_hot_root(&file, &test_spans, &mut candidates);
    if !scope.is_bin {
        blocking_io_without_timeout(&file, &test_spans, &mut candidates);
    }

    // Filter candidates through the allow escapes, tracking which escape
    // actually earned its keep.
    let mut used: Vec<Vec<bool>> = allows.iter().map(|a| vec![false; a.names.len()]).collect();
    let mut diags = Vec::new();
    for c in candidates {
        let line = file.line_of(c.offset);
        let mut suppressed = false;
        for (si, site) in allows.iter().enumerate() {
            if site.line != line && site.line + 1 != line {
                continue;
            }
            for (ni, name) in site.names.iter().enumerate() {
                if name == c.rule.name() {
                    used[si][ni] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            diags.push(Diagnostic {
                file: path.to_path_buf(),
                line,
                span: (c.offset, c.end),
                rule: c.rule,
                message: c.message,
            });
        }
    }

    if strict {
        for (si, site) in allows.iter().enumerate() {
            for (ni, name) in site.names.iter().enumerate() {
                let known = Rule::ALLOWABLE.iter().any(|r| r.name() == name.as_str());
                let message = if !known {
                    format!("allow escape names unknown rule `{name}`; delete or fix it")
                } else if !used[si][ni] {
                    format!("stale escape: `allow({name})` suppresses nothing; delete it")
                } else {
                    continue;
                };
                diags.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: site.line,
                    span: site.span,
                    rule: Rule::StaleAllow,
                    message,
                });
            }
        }
    }

    diags.sort_by_key(|d| d.line);
    Analysis { diagnostics: diags, allows, live: used }
}

/// Which path-scoped rules apply to this file.
struct PathScope {
    is_tape_file: bool,
    is_op_module: bool,
    is_model_or_loss: bool,
    is_bin: bool,
}

/// `mutex-unwrap` + `unwrap-in-lib`. A poisoned-lock unwrap is a more
/// specific defect than a generic unwrap — it turns one panicked thread
/// into a cascading panic on every thread touching the lock — so each
/// `.lock().unwrap()` site yields one `mutex-unwrap` diagnostic and
/// subsumes the overlapping `unwrap-in-lib` candidate.
fn unwrap_rules(file: &SourceFile<'_>, test_spans: &[(usize, usize)], out: &mut Vec<Candidate>) {
    let mut mutex_sink_positions = Vec::new();
    for guard in ["lock", "read", "write"] {
        for sink in ["unwrap", "expect"] {
            let pattern: &[&str] = &[".", guard, "(", ")", ".", sink, "("];
            for p in file.find_seq(pattern) {
                let at = file.tokens[file.code[p]].start;
                if in_any(test_spans, at) {
                    continue;
                }
                // Remember the sink's dot so the generic pass skips it.
                mutex_sink_positions.push(p + 4);
                let end = file.tokens[file.code[p + 6]].end;
                let shown = format!(".{guard}().{sink}(");
                out.push(Candidate {
                    offset: at,
                    end,
                    rule: Rule::MutexUnwrap,
                    message: format!(
                        "`{shown}..` panics whenever another thread panicked while \
                         holding the lock; recover with \
                         `.{guard}().unwrap_or_else(PoisonError::into_inner)` or annotate \
                         with `// pup-lint: allow(mutex-unwrap)`"
                    ),
                });
            }
        }
    }
    for sink in ["unwrap", "expect"] {
        let pattern: &[&str] = &[".", sink, "("];
        for p in file.find_seq(pattern) {
            if sink == "unwrap" {
                // `.unwrap()` specifically — `.unwrap_or_else` etc. are the
                // recovery idiom, not a violation. `.expect(` always takes
                // an argument so the bare 3-token pattern suffices.
                if !file.match_seq(p, &[".", "unwrap", "(", ")"]) {
                    continue;
                }
            }
            let at = file.tokens[file.code[p]].start;
            if in_any(test_spans, at) || mutex_sink_positions.contains(&p) {
                continue;
            }
            let end = file.tokens[file.code[p + 2]].end;
            let shown = if sink == "unwrap" { ".unwrap()" } else { ".expect(" };
            out.push(Candidate {
                offset: at,
                end,
                rule: Rule::UnwrapInLib,
                message: format!(
                    "`{shown}` in non-test library code; return an error or \
                     annotate with `// pup-lint: allow(unwrap-in-lib)`"
                ),
            });
        }
    }
}

/// `panic-in-backward`: `panic!` inside `Box::new(…)` argument lists of
/// the tape files.
fn panic_in_backward(
    file: &SourceFile<'_>,
    test_spans: &[(usize, usize)],
    out: &mut Vec<Candidate>,
) {
    let backward_spans = file.call_arg_spans(&["Box", "new"]);
    for p in file.find_seq(&["panic", "!"]) {
        let at = file.tokens[file.code[p]].start;
        if in_any(&backward_spans, at) && !in_any(test_spans, at) {
            out.push(Candidate {
                offset: at,
                end: file.tokens[file.code[p + 1]].end,
                rule: Rule::PanicInBackward,
                message: "`panic!` inside a backward closure: a broken gradient must \
                          surface through the tape auditor, not ad-hoc panics"
                    .to_string(),
            });
        }
    }
}

/// `clone-in-loop`: `.clone()` / `.value_clone()` inside loop bodies.
fn clone_in_loop(file: &SourceFile<'_>, test_spans: &[(usize, usize)], out: &mut Vec<Candidate>) {
    let loop_spans = file.loop_body_spans();
    for needle in ["clone", "value_clone"] {
        for p in file.find_seq(&[".", needle, "(", ")"]) {
            let at = file.tokens[file.code[p]].start;
            if in_any(&loop_spans, at) && !in_any(test_spans, at) {
                out.push(Candidate {
                    offset: at,
                    end: file.tokens[file.code[p + 3]].end,
                    rule: Rule::CloneInLoop,
                    message: format!(
                        "`.{needle}()` inside a loop body allocates per iteration; hoist \
                         it or annotate with `// pup-lint: allow(clone-in-loop)`"
                    ),
                });
            }
        }
    }
}

/// `raw-print-in-lib`: `println!` / `eprintln!` in library code.
fn raw_print_in_lib(
    file: &SourceFile<'_>,
    test_spans: &[(usize, usize)],
    out: &mut Vec<Candidate>,
) {
    for needle in ["println", "eprintln"] {
        for p in file.find_seq(&[needle, "!"]) {
            let at = file.tokens[file.code[p]].start;
            if !in_any(test_spans, at) {
                out.push(Candidate {
                    offset: at,
                    end: file.tokens[file.code[p + 1]].end,
                    rule: Rule::RawPrintInLib,
                    message: format!(
                        "`{needle}!` in library code; record telemetry via pup-obs or \
                         return the data to the caller, or annotate with \
                         `// pup-lint: allow(raw-print-in-lib)`"
                    ),
                });
            }
        }
    }
}

/// `undocumented-pub-op`: `pub fn` without a preceding doc comment in the
/// tensor op module. Walks tokens backwards over attributes and whitespace
/// to the nearest meaningful token, which must be a doc comment.
fn undocumented_pub_fns(
    file: &SourceFile<'_>,
    test_spans: &[(usize, usize)],
    out: &mut Vec<Candidate>,
) {
    for p in file.find_seq(&["pub", "fn"]) {
        let pub_tok = file.code[p];
        let at = file.tokens[pub_tok].start;
        if in_any(test_spans, at) {
            continue;
        }
        let fn_name = file.code.get(p + 2).map(|&i| file.text(i)).unwrap_or("?").to_string();
        // Walk raw tokens backwards from `pub`, skipping whitespace and
        // attribute groups; documented iff the first thing above is a doc
        // comment.
        let mut ti = pub_tok;
        let documented = loop {
            if ti == 0 {
                break false;
            }
            ti -= 1;
            match file.tokens[ti].kind {
                TokenKind::Whitespace => continue,
                TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => break doc,
                TokenKind::Punct if file.is_punct(ti, b']') => {
                    // Skip a whole `#[…]` attribute.
                    match file.matching(ti) {
                        Some(open) if open >= 1 && file.is_punct(open - 1, b'#') => {
                            ti = open - 1;
                            continue;
                        }
                        Some(open) => {
                            // `[` preceded by whitespace then `#`.
                            let mut j = open;
                            while j > 0 && file.tokens[j - 1].kind == TokenKind::Whitespace {
                                j -= 1;
                            }
                            if j > 0 && file.is_punct(j - 1, b'#') {
                                ti = j - 1;
                                continue;
                            }
                            break false;
                        }
                        None => break false,
                    }
                }
                _ => break false,
            }
        };
        if !documented {
            out.push(Candidate {
                offset: at,
                end: file.tokens[pub_tok].end,
                rule: Rule::UndocumentedPubOp,
                message: format!("public tensor op `{fn_name}` has no doc comment"),
            });
        }
    }
}

/// Guard tokens that quiet `unguarded-ln` when they appear in the same
/// statement: a floor/clamp call, an epsilon identifier, or a small
/// negative-exponent float literal.
fn stmt_has_guard(file: &SourceFile<'_>, stmt: &Stmt) -> bool {
    let (Some(first), Some(last)) = (file.code_pos(stmt.first), file.code_pos(stmt.last)) else {
        return false;
    };
    for p in first..=last {
        let ti = file.code[p];
        match file.tokens[ti].kind {
            TokenKind::Ident => {
                let text = file.text(ti);
                if matches!(text, "max" | "clamp" | "ln_1p") {
                    return true;
                }
                let lower = text.to_ascii_lowercase();
                if lower.contains("eps") && !lower.contains("step") {
                    return true;
                }
            }
            TokenKind::Float => {
                let text = file.text(ti);
                if text.contains("e-") || text.contains("E-") {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// `unguarded-ln`: `.ln()` / `.log2()` / `.log10()` calls and divisions by
/// tape-derived values with no epsilon/clamp guard in the same statement.
/// Model/loss code only: a log of a zero-probability or a division by an
/// un-floored norm turns one bad batch into NaN weights.
fn unguarded_ln(file: &SourceFile<'_>, test_spans: &[(usize, usize)], out: &mut Vec<Candidate>) {
    let mut consider = |at: usize, end: usize, what: String| {
        let guarded =
            file.enclosing_statement(at).map(|stmt| stmt_has_guard(file, &stmt)).unwrap_or(false);
        if guarded {
            return;
        }
        out.push(Candidate {
            offset: at,
            end,
            rule: Rule::UnguardedLn,
            message: format!(
                "{what} without an epsilon/clamp guard in the same statement; floor \
                 the argument (e.g. `.max(EPS)`) or annotate with \
                 `// pup-lint: allow(unguarded-ln)`"
            ),
        });
    };
    for needle in ["ln", "log2", "log10"] {
        for p in file.find_seq(&[".", needle, "(", ")"]) {
            let at = file.tokens[file.code[p]].start;
            if !in_any(test_spans, at) {
                let end = file.tokens[file.code[p + 3]].end;
                consider(at, end, format!("`.{needle}()` in model/loss code"));
            }
        }
    }
    // Division by a tape-derived value: scan the divisor expression (the
    // token run after `/` up to the next lower-precedence operator at the
    // same depth) for tape-read calls.
    const TAPE_READS: &[&[&str]] = &[
        &[".", "scalar", "("],
        &[".", "value", "("],
        &[".", "sum", "("],
        &[".", "mean", "("],
        &[".", "get", "("],
    ];
    for p in 0..file.code.len() {
        let ti = file.code[p];
        if !file.is_punct(ti, b'/') {
            continue;
        }
        let at = file.tokens[ti].start;
        if in_any(test_spans, at) {
            continue;
        }
        // `/=` is a division too; `//` never reaches the code stream.
        let mut depth = 0i32;
        let mut q = p + 1;
        let mut tape_read = false;
        while let Some(&tj) = file.code.get(q) {
            if file.tokens[tj].kind == TokenKind::Punct {
                match file.src.as_bytes()[file.tokens[tj].start] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    }
                    b'+' | b'-' | b',' | b';' | b'=' | b'<' | b'>' | b'|' | b'&' if depth == 0 => {
                        break;
                    }
                    _ => {}
                }
            }
            if depth >= 0 && TAPE_READS.iter().any(|pat| file.match_seq(q, pat)) {
                tape_read = true;
            }
            q += 1;
        }
        if tape_read {
            consider(at, file.tokens[ti].end, "division by a tape-derived value".to_string());
        }
    }
}

/// Tokens allowed inside a comparison operand's postfix chain.
fn operand_token(file: &SourceFile<'_>, ti: usize) -> bool {
    matches!(file.tokens[ti].kind, TokenKind::Ident | TokenKind::Int | TokenKind::Float)
        || file.is_punct(ti, b'.')
}

/// Whether a set of operand tokens "looks f64": a float literal, an
/// `f64`/`f32` cast, or a `.scalar`-style tape read.
fn floaty(file: &SourceFile<'_>, tokens: &[usize]) -> bool {
    tokens.iter().any(|&ti| match file.tokens[ti].kind {
        TokenKind::Float => true,
        TokenKind::Ident => {
            let t = file.text(ti);
            t == "f64" || t == "f32" || t.contains("scalar")
        }
        _ => false,
    })
}

/// `as-cast-truncation`: lossy `as` casts in non-test code. Casting to
/// `u8`/`u16`/`u32`/`i8`/`i16`/`i32` silently drops high bits; `as f32`
/// drops mantissa precision; `as usize` truncates toward zero when the
/// source operand chain looks like a float. Widening or same-width casts
/// (`as f64`, `as u64`, `as i64`, integer `as usize`) stay quiet —
/// the rule targets silent value corruption, not representation changes.
fn as_cast_truncation(
    file: &SourceFile<'_>,
    test_spans: &[(usize, usize)],
    out: &mut Vec<Candidate>,
) {
    const LOSSY: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
    for p in 0..file.code.len() {
        let kw = file.code[p];
        if !file.is_ident(kw, "as") {
            continue;
        }
        let Some(&ty) = file.code.get(p + 1) else { continue };
        if file.tokens[ty].kind != TokenKind::Ident {
            continue;
        }
        let at = file.tokens[kw].start;
        if in_any(test_spans, at) {
            continue;
        }
        let target = file.text(ty);
        let lossy = if LOSSY.contains(&target) {
            true
        } else if target == "usize" {
            // Walk the source operand's postfix chain backward, entering
            // matched `(…)` groups whole (same walk as `float-eq`).
            let mut left = Vec::new();
            let mut q = p;
            while q > 0 {
                let ti = file.code[q - 1];
                if file.is_punct(ti, b')') {
                    match file.matching(ti).and_then(|o| file.code_pos(o)) {
                        Some(op) => {
                            for r in op..q {
                                left.push(file.code[r]);
                            }
                            q = op;
                            continue;
                        }
                        None => break,
                    }
                }
                if operand_token(file, ti) {
                    left.push(ti);
                    q -= 1;
                } else {
                    break;
                }
            }
            floaty(file, &left)
        } else {
            false
        };
        if lossy {
            out.push(Candidate {
                offset: at,
                end: file.tokens[ty].end,
                rule: Rule::AsCastTruncation,
                message: format!(
                    "`as {target}` may lose value bits silently; use `try_from` (or round \
                     explicitly) or annotate with `// pup-lint: allow(as-cast-truncation)`"
                ),
            });
        }
    }
}

/// `float-eq`: `==` / `!=` where either operand's postfix chain looks like
/// an `f64` expression. Exact float comparison is almost always a bug
/// outside tests; legitimate exact sentinels (`p == 0.0` fast paths) opt
/// out explicitly. Operands are walked across lines, so comparisons split
/// by rustfmt are still seen whole (a miss class of the old line engine).
fn float_eq(file: &SourceFile<'_>, test_spans: &[(usize, usize)], out: &mut Vec<Candidate>) {
    for p in 0..file.code.len() {
        let a = file.code[p];
        let Some(&b) = file.code.get(p + 1) else { continue };
        let first = if file.is_punct(a, b'=') {
            "="
        } else if file.is_punct(a, b'!') {
            "!"
        } else {
            continue;
        };
        // The two bytes must be adjacent to form one operator.
        if !file.is_punct(b, b'=') || file.tokens[a].end != file.tokens[b].start {
            continue;
        }
        // Exclude composites: `<=` `>=` `==` prefix, and `x === y` typos.
        if let Some(prev) = file.prev_code(p) {
            if file.tokens[prev].end == file.tokens[a].start
                && (file.is_punct(prev, b'<')
                    || file.is_punct(prev, b'>')
                    || file.is_punct(prev, b'=')
                    || file.is_punct(prev, b'!'))
            {
                continue;
            }
        }
        if file
            .code
            .get(p + 2)
            .is_some_and(|&c| file.is_punct(c, b'=') && file.tokens[b].end == file.tokens[c].start)
        {
            continue;
        }
        let at = file.tokens[a].start;
        if in_any(test_spans, at) {
            continue;
        }
        // Left operand: walk back over the postfix chain, entering matched
        // `(…)` groups whole.
        let mut left = Vec::new();
        let mut q = p;
        while q > 0 {
            let ti = file.code[q - 1];
            if file.is_punct(ti, b')') {
                match file.matching(ti).and_then(|o| file.code_pos(o)) {
                    Some(op) => {
                        for r in op..q {
                            left.push(file.code[r]);
                        }
                        q = op;
                        continue;
                    }
                    None => break,
                }
            }
            if operand_token(file, ti) {
                left.push(ti);
                q -= 1;
            } else {
                break;
            }
        }
        // Right operand: symmetric, forwards.
        let mut right = Vec::new();
        let mut q = p + 2;
        while let Some(&ti) = file.code.get(q) {
            if file.is_punct(ti, b'(') {
                match file.matching(ti).and_then(|c| file.code_pos(c)) {
                    Some(cp) => {
                        for r in q..=cp {
                            right.push(file.code[r]);
                        }
                        q = cp + 1;
                        continue;
                    }
                    None => break,
                }
            }
            if operand_token(file, ti) {
                right.push(ti);
                q += 1;
            } else {
                break;
            }
        }
        if floaty(file, &left) || floaty(file, &right) {
            let needle = if first == "=" { "==" } else { "!=" };
            let show = |toks: &[usize]| -> String {
                let mut sorted = toks.to_vec();
                sorted.sort_unstable();
                sorted.iter().map(|&ti| file.text(ti)).collect()
            };
            out.push(Candidate {
                offset: at,
                end: file.tokens[b].end,
                rule: Rule::FloatEq,
                message: format!(
                    "`{needle}` between f64 expressions (`{}` vs `{}`); \
                     compare against a tolerance or annotate with \
                     `// pup-lint: allow(float-eq)`",
                    show(&left),
                    show(&right)
                ),
            });
        }
    }
}

/// `crash-unsafe-io`: `fs::write(` / `File::create(` inside a function
/// whose body never calls `rename`. A write that lands in place can be
/// torn by a crash mid-write; the convention is to write a temporary
/// sibling and `fs::rename` it over the target (see `pup_ckpt::store`).
fn crash_unsafe_io(file: &SourceFile<'_>, test_spans: &[(usize, usize)], out: &mut Vec<Candidate>) {
    let fn_spans = file.fn_body_spans();
    let rename_offsets: Vec<usize> = file
        .find_seq(&["rename", "("])
        .into_iter()
        .map(|p| file.tokens[file.code[p]].start)
        .collect();
    for (path, shown) in [
        (&["fs", ":", ":", "write", "("][..], "fs::write("),
        (&["File", ":", ":", "create", "("][..], "File::create("),
    ] {
        for p in file.find_seq(path) {
            let at = file.tokens[file.code[p]].start;
            if in_any(test_spans, at) {
                continue;
            }
            // The innermost enclosing fn body decides: a `rename(` anywhere
            // in it means this write is half of an atomic replace.
            let enclosing =
                fn_spans.iter().filter(|&&(s, e)| at >= s && at < e).min_by_key(|&&(s, e)| e - s);
            if let Some(&(s, e)) = enclosing {
                if rename_offsets.iter().any(|&r| r >= s && r < e) {
                    continue;
                }
            }
            out.push(Candidate {
                offset: at,
                end: file.tokens[file.code[p + path.len() - 1]].end,
                rule: Rule::CrashUnsafeIo,
                message: format!(
                    "`{shown}..)` with no `rename` in the enclosing function: a crash \
                     mid-write tears the file; write a temp sibling and `fs::rename` it \
                     into place, or annotate with `// pup-lint: allow(crash-unsafe-io)`"
                ),
            });
        }
    }
}

/// `untraced-hot-root`: a `// pup-hot: <label>` root fn whose body never
/// opens a telemetry span. The annotation promises the fn is a certified
/// hot path; the span is what makes that path visible in request traces
/// and flame reports — a dark hot root is the first place a latency
/// investigation dead-ends. Counts both `pup_obs::span(..)` thread-local
/// spans and `.span(..)` calls on a carried trace context.
fn untraced_hot_root(
    file: &SourceFile<'_>,
    test_spans: &[(usize, usize)],
    out: &mut Vec<Candidate>,
) {
    // Byte offsets of every `::span(` / `.span(` call in the file.
    let span_opens: Vec<usize> = file
        .find_seq(&["span", "("])
        .into_iter()
        .filter(|&p| {
            p > 0 && {
                let prev = file.code[p - 1];
                file.is_punct(prev, b'.')
                    || (file.is_punct(prev, b':') && p > 1 && file.is_punct(file.code[p - 2], b':'))
            }
        })
        .map(|p| file.tokens[file.code[p]].start)
        .collect();
    for d in file.fn_defs() {
        let Some(label) = crate::callgraph::hot_annotation(file, d.kw) else { continue };
        let at = file.tokens[d.kw].start;
        if in_any(test_spans, at) {
            continue;
        }
        let Some((open, close)) = d.body else { continue };
        let (b0, b1) = (file.tokens[open].start, file.tokens[close].end);
        if span_opens.iter().any(|&s| s > b0 && s < b1) {
            continue;
        }
        out.push(Candidate {
            offset: at,
            end: file.tokens[d.kw].end,
            rule: Rule::UntracedHotRoot,
            message: format!(
                "`// pup-hot: {label}` root opens no telemetry span; open \
                 `pup_obs::span(..)` or a trace-context `.span(..)` in its body, \
                 or annotate with `// pup-lint: allow(untraced-hot-root)`"
            ),
        });
    }
}

/// `blocking-io-without-timeout`: a function that touches a socket type
/// (`TcpStream` / `UnixStream`) and performs blocking reads or writes,
/// yet never mentions a timeout or deadline anywhere in its span. Such a
/// function parks its thread indefinitely behind one dead peer — the
/// exact hang class the serving gateway's typed-failure contract forbids.
/// Arming the socket elsewhere is expressible by threading a
/// `*_timeout`-named value through, or by the allow escape.
fn blocking_io_without_timeout(
    file: &SourceFile<'_>,
    test_spans: &[(usize, usize)],
    out: &mut Vec<Candidate>,
) {
    const SOCKET_TYPES: &[&str] = &["TcpStream", "UnixStream", "UdpSocket"];
    const SINKS: &[&str] =
        &["read", "read_exact", "read_to_end", "read_to_string", "write", "write_all"];
    // Byte offsets of every `.sink(` method call in the file.
    let mut sink_calls: Vec<(usize, &str)> = Vec::new();
    for sink in SINKS {
        for p in file.find_seq(&[".", sink, "("]) {
            sink_calls.push((file.tokens[file.code[p]].start, *sink));
        }
    }
    for d in file.fn_defs() {
        let at = file.tokens[d.kw].start;
        if in_any(test_spans, at) {
            continue;
        }
        let Some((_, body_close)) = d.body else { continue };
        // The fn's whole span, params included: a deadline passed as an
        // argument counts as the caller owning the budget.
        let (f0, f1) = (file.tokens[d.kw].start, file.tokens[body_close].end);
        let mut touches_socket = false;
        let mut guarded = false;
        for &ti in &file.code {
            let t = &file.tokens[ti];
            if t.start < f0 || t.end > f1 || t.kind != TokenKind::Ident {
                continue;
            }
            let text = file.text(ti);
            if SOCKET_TYPES.contains(&text) {
                touches_socket = true;
            }
            let lower = text.to_ascii_lowercase();
            if lower.contains("timeout") || lower.contains("deadline") {
                guarded = true;
            }
        }
        if !touches_socket || guarded {
            continue;
        }
        let Some(&(call_at, sink)) = sink_calls.iter().find(|(s, _)| *s > f0 && *s < f1) else {
            continue;
        };
        let name = d.name.map(|n| file.text(n)).unwrap_or("<fn>");
        out.push(Candidate {
            offset: call_at,
            end: call_at + sink.len() + 1,
            rule: Rule::BlockingIoNoTimeout,
            message: format!(
                "`{name}` calls `.{sink}(` on a socket but never arms a \
                 timeout: one dead peer parks this thread forever; call \
                 `set_read_timeout`/`set_write_timeout` (or charge a deadline) \
                 in this function, or annotate with \
                 `// pup-lint: allow(blocking-io-without-timeout)`"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(name: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(Path::new(name), src)
    }

    fn lint_strict(name: &str, src: &str) -> Vec<Diagnostic> {
        lint_source_with(Path::new(name), src, true)
    }

    #[test]
    fn narrowing_int_cast_is_flagged() {
        let src = "pub fn f(x: u64) -> u32 {\n    x as u32\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::AsCastTruncation);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn f32_cast_is_flagged_but_f64_is_not() {
        let d = lint_str("lib.rs", "pub fn f(x: f64) -> f32 {\n    x as f32\n}\n");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::AsCastTruncation);
        assert!(lint_str("lib.rs", "pub fn f(x: u32) -> f64 {\n    x as f64\n}\n").is_empty());
    }

    #[test]
    fn float_to_usize_cast_is_flagged_but_int_to_usize_is_not() {
        let src = "pub fn f(x: f64) -> usize {\n    (x * 0.5) as usize\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::AsCastTruncation);
        assert!(lint_str("lib.rs", "pub fn f(x: u32) -> usize {\n    x as usize\n}\n").is_empty());
    }

    #[test]
    fn as_cast_in_tests_and_with_escape_is_quiet() {
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(x: u64) -> u32 {\n        x as u32\n    }\n}\n";
        assert!(lint_str("lib.rs", test_src).is_empty());
        let escaped =
            "pub fn f(x: u64) -> u32 {\n    // pup-lint: allow(as-cast-truncation)\n    x as u32\n}\n";
        assert!(lint_str("lib.rs", escaped).is_empty());
    }

    #[test]
    fn use_as_alias_is_not_a_cast() {
        assert!(lint_str("lib.rs", "use std::io::Result as IoResult;\npub fn f() {}\n").is_empty());
    }

    #[test]
    fn unwrap_flagged_in_lib_code_only() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnwrapInLib);
        assert_eq!(d[0].line, 2);

        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n";
        assert!(lint_str("lib.rs", test_src).is_empty());
    }

    #[test]
    fn mutex_unwrap_flagged_once_and_subsumes_unwrap_in_lib() {
        let src = "fn depth(&self) -> usize {\n    self.inner.lock().unwrap().len()\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1, "one site, one diagnostic: {d:?}");
        assert_eq!(d[0].rule, Rule::MutexUnwrap);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("PoisonError::into_inner"));
    }

    #[test]
    fn mutex_unwrap_covers_rwlock_and_expect() {
        for guard in [".lock()", ".read()", ".write()"] {
            let unwrap = format!("fn f(&self) {{\n    self.m{guard}.unwrap();\n}}\n");
            let d = lint_str("lib.rs", &unwrap);
            assert_eq!(d.len(), 1, "{guard}: {d:?}");
            assert_eq!(d[0].rule, Rule::MutexUnwrap);
            let expect = format!("fn f(&self) {{\n    self.m{guard}.expect(\"poisoned\");\n}}\n");
            let d = lint_str("lib.rs", &expect);
            assert_eq!(d.len(), 1, "{guard} expect: {d:?}");
            assert_eq!(d[0].rule, Rule::MutexUnwrap);
        }
    }

    #[test]
    fn mutex_unwrap_survives_rustfmt_wrapping() {
        // The old line-based engine missed chains split across lines.
        let src = "fn depth(&self) -> usize {\n    self.inner\n        .lock()\n        .unwrap()\n        .len()\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::MutexUnwrap);
    }

    #[test]
    fn poison_safe_locking_is_clean() {
        let src = "fn depth(&self) -> usize {\n    self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    #[test]
    fn mutex_unwrap_respects_tests_and_escapes() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(m: &Mutex<u32>) -> u32 {\n        *m.lock().unwrap()\n    }\n}\n";
        assert!(lint_str("lib.rs", test_src).is_empty());
        let escaped = "fn f(m: &Mutex<u32>) -> u32 {\n    // pup-lint: allow(mutex-unwrap)\n    *m.lock().unwrap()\n}\n";
        assert!(lint_str("lib.rs", escaped).is_empty());
        // The escape must name the specific rule; unwrap-in-lib alone does
        // not cover a poisoned-lock unwrap.
        let wrong = "fn f(m: &Mutex<u32>) -> u32 {\n    // pup-lint: allow(unwrap-in-lib)\n    *m.lock().unwrap()\n}\n";
        let d = lint_strict("lib.rs", wrong);
        assert!(d.iter().any(|d| d.rule == Rule::MutexUnwrap), "{d:?}");
    }

    #[test]
    fn allow_comment_suppresses_on_same_or_previous_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // pup-lint: allow(unwrap-in-lib)\n";
        assert!(lint_str("lib.rs", same).is_empty());
        let above =
            "// pup-lint: allow(unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_str("lib.rs", above).is_empty());
        let wrong_rule =
            "// pup-lint: allow(clone-in-loop)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_str("lib.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn allow_inside_string_literal_is_not_an_escape() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let _m = \"pup-lint: allow(unwrap-in-lib)\";\n    x.unwrap()\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1, "a string mentioning the escape must not suppress: {d:?}");
        assert_eq!(d[0].rule, Rule::UnwrapInLib);
    }

    #[test]
    fn allow_inside_doc_comment_is_not_an_escape() {
        let src = "/// Use `// pup-lint: allow(unwrap-in-lib)` to opt out.\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1, "doc prose must not suppress: {d:?}");
    }

    #[test]
    fn needles_inside_strings_and_comments_ignored() {
        let src = "fn f() -> &'static str {\n    // .unwrap() in a comment\n    \".unwrap() in a string\"\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_all_test_is_excluded() {
        // The old regex engine searched for the literal `#[cfg(test)]` and
        // flagged unwraps inside `#[cfg(all(test, …))]` modules — a
        // documented false-positive class this engine fixes.
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod tests {\n    fn f(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n";
        assert!(lint_str("lib.rs", src).is_empty(), "cfg(all(test, ..)) is test code");
        let multiline = "#[cfg(\n    test\n)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(lint_str("lib.rs", multiline).is_empty(), "multi-line cfg attr is test code");
    }

    #[test]
    fn panic_in_backward_scoped_to_tape_files() {
        let src =
            "fn op() {\n    let b = Box::new(|g: &u32| {\n        panic!(\"bad\");\n    });\n}\n";
        let d = lint_str("ops.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::PanicInBackward);
        assert_eq!(d[0].line, 3);
        // Same text in a non-tape file: not this rule's business.
        assert!(lint_str("metrics.rs", src).is_empty());
        // panic! outside the closure is not this rule's business either.
        let outside = "fn op() {\n    panic!(\"bad\");\n}\n";
        assert!(lint_str("ops.rs", outside).is_empty());
    }

    #[test]
    fn clone_in_loop_flagged() {
        let src = "fn f(v: &[Vec<u32>]) {\n    for x in v {\n        let y = x.clone();\n        drop(y);\n    }\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::CloneInLoop);
        assert_eq!(d[0].line, 3);
        let outside =
            "fn f(v: &Vec<u32>) {\n    let y = v.clone();\n    for x in &y { drop(x); }\n}\n";
        assert!(lint_str("lib.rs", outside).is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "impl Clone for Foo {\n    fn clone(&self) -> Self { self.inner.clone() }\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    #[test]
    fn undocumented_pub_op_only_in_tensor_ops_module() {
        let src = "/// Documented.\npub fn good() {}\n\npub fn bad() {}\n";
        let d = lint_source(Path::new("crates/tensor/src/ops.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UndocumentedPubOp);
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("`bad`"));
        // Other files are covered by rustc's missing_docs instead.
        assert!(lint_str("other.rs", src).is_empty());
    }

    #[test]
    fn doc_comment_may_be_separated_by_attributes() {
        let src = "/// Documented.\n#[inline]\npub fn good() {}\n";
        assert!(lint_source(Path::new("crates/tensor/src/ops.rs"), src).is_empty());
    }

    #[test]
    fn raw_strings_and_char_literals_masked() {
        let src = "fn f() {\n    let s = r#\"x.unwrap()\"#;\n    let c = '\\'';\n    let lt: &'static str = \"\";\n    drop((s, c, lt));\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    // --- unguarded-ln ---------------------------------------------------

    #[test]
    fn unguarded_ln_flagged_in_model_code() {
        let src = "fn loss(p: f64) -> f64 {\n    p.ln()\n}\n";
        let d = lint_str("crates/models/src/pup.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnguardedLn);
        assert_eq!(d[0].line, 2);
        // Out of scope: not model/loss code.
        assert!(lint_str("crates/eval/src/metrics.rs", src).is_empty());
        // A guard in the same statement quiets it.
        let guarded = "fn loss(p: f64) -> f64 {\n    p.max(EPS).ln()\n}\n";
        assert!(lint_str("crates/models/src/pup.rs", guarded).is_empty());
        // So does an explicit escape.
        let escaped =
            "fn loss(p: f64) -> f64 {\n    // pup-lint: allow(unguarded-ln)\n    p.ln()\n}\n";
        assert!(lint_str("crates/models/src/pup.rs", escaped).is_empty());
    }

    #[test]
    fn unguarded_ln_ignores_identifiers_that_merely_contain_guard_words() {
        // `unclamped` contains "clamp"; the old substring engine treated it
        // as a guard and missed the unguarded log — a documented miss class.
        let src = "fn loss(x: f64) -> f64 {\n    let unclamped = x.ln();\n    unclamped\n}\n";
        let d = lint_str("crates/models/src/pup.rs", src);
        assert_eq!(d.len(), 1, "`unclamped` is not a guard: {d:?}");
        assert_eq!(d[0].rule, Rule::UnguardedLn);
    }

    #[test]
    fn unguarded_ln_sees_guards_on_other_lines_of_the_statement() {
        // The old engine only looked at the offending line; a wrapped
        // statement with the floor on its own line was a false positive.
        let src = "fn loss(p: f64) -> f64 {\n    p\n        .max(1e-12)\n        .ln()\n}\n";
        assert!(lint_str("crates/models/src/pup.rs", src).is_empty());
    }

    #[test]
    fn unguarded_division_by_tape_value_flagged() {
        let src = "fn norm(x: &Var, t: &Var) -> f64 {\n    x.scalar() / t.scalar()\n}\n";
        let d = lint_str("crates/models/src/trainer.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnguardedLn);
        let guarded =
            "fn norm(x: &Var, t: &Var) -> f64 {\n    x.scalar() / t.scalar().max(1e-12)\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", guarded).is_empty());
        // Division by a plain count is fine.
        let count = "fn mean(sum: f64, n: usize) -> f64 {\n    sum / n as f64\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", count).is_empty());
    }

    // --- float-eq -------------------------------------------------------

    #[test]
    fn float_eq_flagged_outside_tests() {
        let src = "fn f(p: f64) -> bool {\n    p == 0.0\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::FloatEq);
        assert_eq!(d[0].line, 2);
        let ne = "fn f(p: f64) -> bool {\n    p != 1.5\n}\n";
        assert_eq!(lint_str("lib.rs", ne).len(), 1);
        // Integer comparisons are fine.
        let int = "fn f(r: usize) -> bool {\n    r % 2 == 0\n}\n";
        assert!(lint_str("lib.rs", int).is_empty());
        // Tests may compare exactly.
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(p: f64) -> bool {\n        p == 0.0\n    }\n}\n";
        assert!(lint_str("lib.rs", test_src).is_empty());
        // Escapes work.
        let escaped = "fn f(p: f64) -> bool {\n    p == 0.0 // pup-lint: allow(float-eq)\n}\n";
        assert!(lint_str("lib.rs", escaped).is_empty());
    }

    #[test]
    fn float_eq_ignores_composite_operators() {
        let src = "fn f(p: f64) -> bool {\n    p <= 0.0 || p >= 1.0\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    #[test]
    fn float_eq_sees_operands_across_lines() {
        // The old engine read operands from the operator's line only, so a
        // wrapped comparison with the float on the next line was a miss.
        let src = "fn f(p: f64) -> bool {\n    p ==\n        0.0\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1, "wrapped comparison must still be seen: {d:?}");
        assert_eq!(d[0].rule, Rule::FloatEq);
    }

    // --- crash-unsafe-io ------------------------------------------------

    #[test]
    fn in_place_write_without_rename_is_flagged() {
        let src = "fn save(p: &Path, s: &str) -> io::Result<()> {\n    fs::write(p, s)\n}\n";
        let d = lint_str("io.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::CrashUnsafeIo);
        assert_eq!(d[0].line, 2);

        let create = "fn save(p: &Path) -> io::Result<File> {\n    File::create(p)\n}\n";
        let d = lint_str("io.rs", create);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::CrashUnsafeIo);
    }

    #[test]
    fn write_temp_then_rename_is_clean() {
        let src = "fn save(p: &Path, s: &str) -> io::Result<()> {\n    let tmp = p.with_extension(\"tmp\");\n    fs::write(&tmp, s)?;\n    fs::rename(&tmp, p)\n}\n";
        assert!(lint_str("io.rs", src).is_empty());
        let create = "fn save(p: &Path, s: &[u8]) -> io::Result<()> {\n    let tmp = p.with_extension(\"tmp\");\n    let mut f = File::create(&tmp)?;\n    f.write_all(s)?;\n    f.sync_all()?;\n    fs::rename(&tmp, p)\n}\n";
        assert!(lint_str("io.rs", create).is_empty());
    }

    #[test]
    fn crash_unsafe_io_respects_tests_and_escapes() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn scratch(p: &Path) {\n        fs::write(p, \"x\").unwrap();\n    }\n}\n";
        assert!(lint_str("io.rs", test_src).is_empty());
        let escaped = "fn corrupt(p: &Path) -> io::Result<()> {\n    // pup-lint: allow(crash-unsafe-io)\n    fs::write(p, \"x\")\n}\n";
        assert!(lint_str("io.rs", escaped).is_empty());
    }

    #[test]
    fn rename_in_a_different_fn_does_not_launder_a_write() {
        let src = "fn save(p: &Path, s: &str) -> io::Result<()> {\n    fs::write(p, s)\n}\n\nfn other(a: &Path, b: &Path) -> io::Result<()> {\n    fs::rename(a, b)\n}\n";
        let d = lint_str("io.rs", src);
        assert_eq!(d.len(), 1, "the rename lives in an unrelated fn: {d:?}");
        assert_eq!(d[0].rule, Rule::CrashUnsafeIo);
    }

    // --- untraced-hot-root ----------------------------------------------

    #[test]
    fn untraced_hot_root_flags_spanless_roots() {
        let src = "// pup-hot: serve-request\npub fn process(x: u32) -> u32 {\n    x + 1\n}\n";
        let d = lint_str("crates/serve/src/engine.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::UntracedHotRoot);
        assert_eq!(d[0].line, 2, "anchored at the fn keyword");
        assert!(d[0].message.contains("serve-request"));
    }

    #[test]
    fn untraced_hot_root_accepts_obs_and_context_spans() {
        let obs = "// pup-hot: train-epoch\npub fn run_epoch(x: u32) -> u32 {\n    \
                   let _span = pup_obs::span(\"epoch\");\n    x + 1\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", obs).is_empty());
        let ctx = "// pup-hot: swap-request\npub fn handle(ctx: &TraceContext) -> u32 {\n    \
                   let _shadow = ctx.span(\"shadow\");\n    1\n}\n";
        assert!(lint_str("crates/serve/src/swap.rs", ctx).is_empty());
    }

    #[test]
    fn untraced_hot_root_ignores_span_mentions_that_are_not_calls() {
        // A bare `span(` call (local fn), a span in a *different* fn, and
        // prose in strings/comments are not this fn's telemetry span.
        let src = "// pup-hot: eval-rank\npub fn rank(x: u32) -> u32 {\n    \
                   // pup_obs::span(\"prose\")\n    span(x)\n}\n\n\
                   fn other() {\n    let _s = pup_obs::span(\"elsewhere\");\n}\n";
        let d = lint_str("crates/eval/src/ranking.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::UntracedHotRoot);
    }

    #[test]
    fn untraced_hot_root_escape_and_tests_are_exempt() {
        let escaped = "// pup-hot: eval-rank\n// pup-lint: allow(untraced-hot-root)\n\
                       pub fn rank(x: u32) -> u32 {\n    x\n}\n";
        assert!(lint_str("crates/eval/src/ranking.rs", escaped).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    // pup-hot: fake\n    \
                        fn hot(x: u32) -> u32 {\n        x\n    }\n}\n";
        assert!(lint_str("crates/eval/src/ranking.rs", test_src).is_empty());
    }

    // --- blocking-io-without-timeout -------------------------------------

    #[test]
    fn blocking_io_flagged_without_any_timeout_in_scope() {
        let src = "use std::io::Read;\nuse std::net::TcpStream;\n\n\
                   fn fetch(mut s: TcpStream) -> Vec<u8> {\n    \
                   let mut buf = Vec::new();\n    \
                   let _ = s.read_to_end(&mut buf);\n    buf\n}\n";
        let d = lint_str("crates/serve/src/netio.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::BlockingIoNoTimeout);
        assert_eq!(d[0].line, 6, "anchored at the blocking call");
        assert!(d[0].message.contains("fetch") && d[0].message.contains("read_to_end"));
    }

    #[test]
    fn blocking_io_quiet_when_a_timeout_or_deadline_is_armed() {
        let armed = "fn fetch(mut s: std::net::TcpStream) -> Vec<u8> {\n    \
                     s.set_read_timeout(Some(std::time::Duration::from_secs(1))).ok();\n    \
                     let mut buf = Vec::new();\n    let _ = s.read_to_end(&mut buf);\n    buf\n}\n";
        assert!(lint_str("crates/serve/src/netio.rs", armed).is_empty());
        // A deadline parameter counts: the caller owns the budget.
        let budgeted = "fn pump(s: &mut TcpStream, deadline_ns: u64) {\n    \
                        let mut b = [0u8; 8];\n    let _ = s.read(&mut b);\n}\n";
        assert!(lint_str("crates/serve/src/netio.rs", budgeted).is_empty());
    }

    #[test]
    fn blocking_io_ignores_functions_without_socket_types() {
        // Plain `Read`/`Write` plumbing (files, in-memory buffers) is not
        // this rule's business.
        let src = "fn copy(mut r: impl std::io::Read) -> Vec<u8> {\n    \
                   let mut buf = Vec::new();\n    let _ = r.read_to_end(&mut buf);\n    buf\n}\n";
        assert!(lint_str("crates/serve/src/netio.rs", src).is_empty());
    }

    #[test]
    fn blocking_io_exempts_bins_tests_and_escapes() {
        let src = "fn fetch(mut s: std::net::TcpStream) {\n    \
                   let mut b = [0u8; 8];\n    let _ = s.read(&mut b);\n}\n";
        assert!(lint_str("crates/core/src/bin/pup.rs", src).is_empty(), "bins exempt");
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(mut s: std::net::TcpStream) {\n        \
                        let mut b = [0u8; 8];\n        let _ = s.read(&mut b);\n    }\n}\n";
        assert!(lint_str("crates/serve/src/netio.rs", test_src).is_empty(), "tests exempt");
        let escaped = "fn fetch(mut s: std::net::TcpStream) {\n    let mut b = [0u8; 8];\n    \
                       // pup-lint: allow(blocking-io-without-timeout)\n    \
                       let _ = s.read(&mut b);\n}\n";
        assert!(lint_str("crates/serve/src/netio.rs", escaped).is_empty(), "escape honored");
    }

    // --- raw-print-in-lib -----------------------------------------------

    #[test]
    fn raw_print_flagged_in_lib_code() {
        let src = "fn f(x: u32) {\n    println!(\"{x}\");\n    eprintln!(\"{x}\");\n}\n";
        let d = lint_str("crates/models/src/trainer.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == Rule::RawPrintInLib));
        assert_eq!((d[0].line, d[1].line), (2, 3));
        // One candidate per call: `eprintln!` must not also match as
        // `println!`.
        assert!(d[1].message.contains("eprintln!"));
    }

    #[test]
    fn raw_print_exempt_in_bins_and_tests() {
        let src = "fn f(x: u32) {\n    println!(\"{x}\");\n}\n";
        assert!(lint_str("crates/core/src/bin/pup.rs", src).is_empty());
        assert!(lint_str("crates/analysis/src/main.rs", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(x: u32) {\n        println!(\"{x}\");\n    }\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", test_src).is_empty());
    }

    #[test]
    fn raw_print_escape_and_masking_work() {
        let escaped =
            "fn f(x: u32) {\n    // pup-lint: allow(raw-print-in-lib)\n    println!(\"{x}\");\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", escaped).is_empty());
        // Needles inside strings/comments never fire.
        let masked =
            "fn f() -> &'static str {\n    // println! here is prose\n    \"eprintln!\"\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", masked).is_empty());
    }

    // --- stale-allow ----------------------------------------------------

    #[test]
    fn stale_allow_reported_only_in_strict_mode() {
        let src = "// pup-lint: allow(unwrap-in-lib)\nfn f() -> u32 {\n    42\n}\n";
        assert!(lint_str("lib.rs", src).is_empty(), "non-strict ignores stale escapes");
        let d = lint_strict("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::StaleAllow);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("unwrap-in-lib"));
    }

    #[test]
    fn live_allow_is_not_stale() {
        let src = "// pup-lint: allow(unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_strict("lib.rs", src).is_empty());
    }

    #[test]
    fn unknown_rule_in_allow_reported_in_strict_mode() {
        let src = "// pup-lint: allow(no-such-rule)\nfn f() {}\n";
        let d = lint_strict("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::StaleAllow);
        assert!(d[0].message.contains("no-such-rule"));
    }

    #[test]
    fn one_stale_name_in_multi_name_allow_is_reported() {
        let src = "// pup-lint: allow(unwrap-in-lib, clone-in-loop)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = lint_strict("lib.rs", src);
        assert_eq!(d.len(), 1, "only the clone-in-loop half is stale: {d:?}");
        assert!(d[0].message.contains("clone-in-loop"));
    }
}
