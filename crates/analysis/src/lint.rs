//! Static lint driver for the PUP workspace.
//!
//! The driver walks every `crates/*/src` tree and enforces repo conventions
//! that `rustc`/`clippy` either cannot express or cannot scope the way we
//! need:
//!
//! | rule | meaning |
//! |------|---------|
//! | `unwrap-in-lib` | no `.unwrap()` / `.expect(` in non-test library code |
//! | `mutex-unwrap` | no `.lock().unwrap()`-style poisoned-lock panics; recover with `unwrap_or_else(PoisonError::into_inner)` |
//! | `panic-in-backward` | no `panic!` inside backward closures of `ops.rs` / `autograd.rs` |
//! | `undocumented-pub-op` | every `pub fn` in the tensor op module has a doc comment |
//! | `clone-in-loop` | no `.clone()` / `.value_clone()` inside loop bodies (perf smell) |
//! | `unguarded-ln` | no `.ln()`/`.log2()`/`.log10()` or division by a tape value without an epsilon/clamp guard in model/loss code |
//! | `float-eq` | no `==`/`!=` between `f64` expressions outside tests |
//! | `crash-unsafe-io` | no `fs::write`/`File::create` in a function that never calls `rename` (write-temp-then-rename keeps saves atomic) |
//! | `raw-print-in-lib` | no `println!`/`eprintln!` in library code (bins and tests exempt); telemetry goes through `pup-obs`, data through return values |
//! | `stale-allow` | (`--strict` only) an allow escape that suppresses nothing |
//!
//! A site opts out with `// pup-lint: allow(<rule>)` on the offending line
//! or on the line directly above it; the escape must live in a real `//`
//! comment (an allow spelled inside a string literal is ignored). The
//! scanner works on a *masked* copy of each file — comments, string literals
//! and char literals are blanked out — so needles inside doc examples or
//! messages never trigger, and `#[cfg(test)]` regions are excluded by brace
//! matching.
//!
//! In strict mode ([`lint_workspace_with`] with `strict = true`) every
//! allow escape must still suppress at least one finding; stale escapes are
//! reported as `stale-allow` violations so they cannot rot in place.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules the driver enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` in non-test library code.
    UnwrapInLib,
    /// `.lock().unwrap()` / `.read().expect(`-style poisoned-lock panics
    /// in non-test library code.
    MutexUnwrap,
    /// `panic!` inside a backward closure in `ops.rs` / `autograd.rs`.
    PanicInBackward,
    /// `pub fn` in the tensor op module without a doc comment.
    UndocumentedPubOp,
    /// `.clone()` / `.value_clone()` inside a loop body.
    CloneInLoop,
    /// Unguarded `.ln()` / `.log2()` / `.log10()` or division by a
    /// tape-derived value in model/loss code.
    UnguardedLn,
    /// `==` / `!=` between `f64` expressions outside tests.
    FloatEq,
    /// `fs::write` / `File::create` in a function that never calls
    /// `rename`: a crash mid-write tears the target file.
    CrashUnsafeIo,
    /// `println!` / `eprintln!` in crate library code (bins/tests exempt):
    /// structured output belongs in `pup-obs` telemetry or return values.
    RawPrintInLib,
    /// An allow escape that no longer suppresses any finding (strict mode).
    StaleAllow,
}

impl Rule {
    /// Every rule an allow escape may name.
    pub const ALLOWABLE: &'static [Rule] = &[
        Rule::UnwrapInLib,
        Rule::MutexUnwrap,
        Rule::PanicInBackward,
        Rule::UndocumentedPubOp,
        Rule::CloneInLoop,
        Rule::UnguardedLn,
        Rule::FloatEq,
        Rule::CrashUnsafeIo,
        Rule::RawPrintInLib,
    ];

    /// The rule's name as used in `// pup-lint: allow(<name>)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::MutexUnwrap => "mutex-unwrap",
            Rule::PanicInBackward => "panic-in-backward",
            Rule::UndocumentedPubOp => "undocumented-pub-op",
            Rule::CloneInLoop => "clone-in-loop",
            Rule::UnguardedLn => "unguarded-ln",
            Rule::FloatEq => "float-eq",
            Rule::CrashUnsafeIo => "crash-unsafe-io",
            Rule::RawPrintInLib => "raw-print-in-lib",
            Rule::StaleAllow => "stale-allow",
        }
    }
}

/// A single lint finding, pointing at `file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule.name(), self.message)
    }
}

/// Result of a full workspace walk.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
}

/// Lints every `.rs` file under `<root>/crates/*/src` (non-strict).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    lint_workspace_with(root, false)
}

/// Lints every `.rs` file under `<root>/crates/*/src`; with `strict`, allow
/// escapes that suppress nothing are reported as `stale-allow` violations.
pub fn lint_workspace_with(root: &Path, strict: bool) -> io::Result<LintReport> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut diagnostics = Vec::new();
    for file in &files {
        let source = fs::read_to_string(file)?;
        diagnostics.extend(lint_source_with(file, &source, strict));
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport { diagnostics, files_checked: files.len() })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints a single file's source text (non-strict). Exposed for tests;
/// `path` only influences the path-scoped rules (`panic-in-backward`,
/// `undocumented-pub-op`, `unguarded-ln`) and the reported location.
pub fn lint_source(path: &Path, source: &str) -> Vec<Diagnostic> {
    lint_source_with(path, source, false)
}

/// A candidate finding before allow-escape filtering.
struct Candidate {
    offset: usize,
    rule: Rule,
    message: String,
}

/// Lints a single file's source text; with `strict`, stale allow escapes
/// are reported too.
pub fn lint_source_with(path: &Path, source: &str, strict: bool) -> Vec<Diagnostic> {
    let (masked, comment_spans) = mask_non_code_spans(source);
    let m = masked.as_bytes();
    let line_starts = line_starts(source);
    let allows = parse_allows(source, &comment_spans);
    let test_spans = attribute_spans(m, b"#[cfg(test)]");
    let mut test_fn_spans = attribute_spans(m, b"#[test]");
    let mut all_test_spans = test_spans;
    all_test_spans.append(&mut test_fn_spans);
    let loop_spans = loop_body_spans(m);
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let is_tape_file = file_name == "ops.rs" || file_name == "autograd.rs";
    let is_op_module = path.ends_with("tensor/src/ops.rs");
    let path_str = path.to_string_lossy().replace('\\', "/");
    let is_model_or_loss = path_str.contains("models/src") || path_str.contains("tensor/src");

    let mut candidates = Vec::new();

    // A poisoned-lock unwrap is a more specific defect than a generic
    // unwrap: it turns one panicked thread into a cascading panic on every
    // other thread touching the lock. Detect these first, and let each
    // match subsume the overlapping `unwrap-in-lib` candidate so one site
    // yields one diagnostic under the more precise rule.
    let mut mutex_spans = Vec::new();
    for guard in [".lock()", ".read()", ".write()"] {
        for sink in [".unwrap()", ".expect("] {
            let needle = format!("{guard}{sink}");
            for at in find_all(m, needle.as_bytes()) {
                if in_any_span(&all_test_spans, at) {
                    continue;
                }
                mutex_spans.push((at, at + needle.len()));
                candidates.push(Candidate {
                    offset: at,
                    rule: Rule::MutexUnwrap,
                    message: format!(
                        "`{needle}..` panics whenever another thread panicked while \
                         holding the lock; recover with \
                         `{guard}.unwrap_or_else(PoisonError::into_inner)` or annotate \
                         with `// pup-lint: allow(mutex-unwrap)`"
                    ),
                });
            }
        }
    }

    for needle in [".unwrap()", ".expect("] {
        for at in find_all(m, needle.as_bytes()) {
            if !in_any_span(&all_test_spans, at) && !in_any_span(&mutex_spans, at) {
                candidates.push(Candidate {
                    offset: at,
                    rule: Rule::UnwrapInLib,
                    message: format!(
                        "`{needle}` in non-test library code; return an error or \
                         annotate with `// pup-lint: allow(unwrap-in-lib)`"
                    ),
                });
            }
        }
    }

    if is_tape_file {
        let backward_spans = paren_spans(m, b"Box::new(");
        for at in find_all(m, b"panic!") {
            if in_any_span(&backward_spans, at) && !in_any_span(&all_test_spans, at) {
                candidates.push(Candidate {
                    offset: at,
                    rule: Rule::PanicInBackward,
                    message: "`panic!` inside a backward closure: a broken gradient must \
                              surface through the tape auditor, not ad-hoc panics"
                        .to_string(),
                });
            }
        }
    }

    for needle in [".clone()", ".value_clone()"] {
        for at in find_all(m, needle.as_bytes()) {
            if in_any_span(&loop_spans, at) && !in_any_span(&all_test_spans, at) {
                candidates.push(Candidate {
                    offset: at,
                    rule: Rule::CloneInLoop,
                    message: format!(
                        "`{needle}` inside a loop body allocates per iteration; hoist \
                         it or annotate with `// pup-lint: allow(clone-in-loop)`"
                    ),
                });
            }
        }
    }

    // Binary targets own stdout/stderr; the rule polices library code only.
    let is_bin = path_str.contains("/src/bin/") || file_name == "main.rs";
    if !is_bin {
        for needle in ["println!", "eprintln!"] {
            for at in find_all(m, needle.as_bytes()) {
                // `println!` is a suffix of `eprintln!`; require a
                // non-identifier byte before the match so each macro call
                // yields exactly one candidate.
                if at > 0 && (m[at - 1].is_ascii_alphanumeric() || m[at - 1] == b'_') {
                    continue;
                }
                if !in_any_span(&all_test_spans, at) {
                    candidates.push(Candidate {
                        offset: at,
                        rule: Rule::RawPrintInLib,
                        message: format!(
                            "`{needle}` in library code; record telemetry via pup-obs or \
                             return the data to the caller, or annotate with \
                             `// pup-lint: allow(raw-print-in-lib)`"
                        ),
                    });
                }
            }
        }
    }

    if is_op_module {
        candidates.extend(undocumented_pub_fns(source, &masked, &all_test_spans, &line_starts));
    }

    if is_model_or_loss {
        candidates.extend(unguarded_ln_candidates(&masked, &all_test_spans, &line_starts));
    }

    candidates.extend(float_eq_candidates(&masked, &all_test_spans, &line_starts));

    candidates.extend(crash_unsafe_io_candidates(&masked, &all_test_spans));

    // Filter candidates through the allow escapes, tracking which escape
    // actually earned its keep.
    let mut used: Vec<Vec<bool>> = allows.iter().map(|a| vec![false; a.names.len()]).collect();
    let mut diags = Vec::new();
    for c in candidates {
        let line = line_of(&line_starts, c.offset);
        let mut suppressed = false;
        for (si, site) in allows.iter().enumerate() {
            if site.line != line && site.line + 1 != line {
                continue;
            }
            for (ni, name) in site.names.iter().enumerate() {
                if name == c.rule.name() {
                    used[si][ni] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            diags.push(Diagnostic {
                file: path.to_path_buf(),
                line,
                rule: c.rule,
                message: c.message,
            });
        }
    }

    if strict {
        for (si, site) in allows.iter().enumerate() {
            for (ni, name) in site.names.iter().enumerate() {
                let known = Rule::ALLOWABLE.iter().any(|r| r.name() == name.as_str());
                let message = if !known {
                    format!("allow escape names unknown rule `{name}`; delete or fix it")
                } else if !used[si][ni] {
                    format!("stale escape: `allow({name})` suppresses nothing; delete it")
                } else {
                    continue;
                };
                diags.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: site.line,
                    rule: Rule::StaleAllow,
                    message,
                });
            }
        }
    }

    diags.sort_by_key(|d| d.line);
    diags
}

/// Finds `pub fn` declarations without a preceding `///` doc comment.
fn undocumented_pub_fns(
    source: &str,
    masked: &str,
    test_spans: &[(usize, usize)],
    line_starts: &[usize],
) -> Vec<Candidate> {
    let lines: Vec<&str> = source.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let mut candidates = Vec::new();
    for (idx, mline) in masked_lines.iter().enumerate() {
        let trimmed = mline.trim_start();
        let offset = line_starts[idx];
        if !trimmed.starts_with("pub fn ") || in_any_span(test_spans, offset) {
            continue;
        }
        let fn_name: String = trimmed["pub fn ".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        // Walk upward over attributes and blank lines to the nearest
        // meaningful line; it must be a doc comment.
        let mut j = idx;
        let documented = loop {
            if j == 0 {
                break false;
            }
            j -= 1;
            let above = lines.get(j).map_or("", |l| l.trim_start());
            if above.is_empty() || above.starts_with("#[") {
                continue;
            }
            break above.starts_with("///");
        };
        if !documented {
            candidates.push(Candidate {
                offset,
                rule: Rule::UndocumentedPubOp,
                message: format!("public tensor op `{fn_name}` has no doc comment"),
            });
        }
    }
    candidates
}

/// Tokens whose presence on a line counts as an epsilon/clamp guard.
const GUARD_TOKENS: &[&str] = &["max(", ".max", "clamp", "eps", "EPS", "1e-", "ln_1p"];

/// Divisor fragments that mark a division as "by a tape value".
const TAPE_VALUE_NEEDLES: &[&str] = &[".scalar()", ".value()", ".sum()", ".mean(", ".get("];

fn line_bounds(masked: &str, line_starts: &[usize], offset: usize) -> (usize, usize) {
    let line = line_of(line_starts, offset);
    let start = line_starts[line - 1];
    let end = masked[start..].find('\n').map_or(masked.len(), |e| start + e);
    (start, end)
}

/// `unguarded-ln`: `.ln()` / `.log2()` / `.log10()` calls, and divisions
/// whose divisor mentions a tape-derived value, on lines with no
/// epsilon/clamp guard token. Model/loss code only: a log of a
/// zero-probability or a division by an un-floored norm turns one bad batch
/// into NaN weights.
fn unguarded_ln_candidates(
    masked: &str,
    test_spans: &[(usize, usize)],
    line_starts: &[usize],
) -> Vec<Candidate> {
    let m = masked.as_bytes();
    let mut candidates = Vec::new();
    let mut consider = |at: usize, what: String| {
        let (start, end) = line_bounds(masked, line_starts, at);
        let line_text = &masked[start..end];
        if GUARD_TOKENS.iter().any(|g| line_text.contains(g)) {
            return;
        }
        candidates.push(Candidate {
            offset: at,
            rule: Rule::UnguardedLn,
            message: format!(
                "{what} without an epsilon/clamp guard on the same line; floor the \
                 argument (e.g. `.max(EPS)`) or annotate with \
                 `// pup-lint: allow(unguarded-ln)`"
            ),
        });
    };
    for needle in [".ln()", ".log2()", ".log10()"] {
        for at in find_all(m, needle.as_bytes()) {
            if !in_any_span(test_spans, at) {
                consider(at, format!("`{needle}` in model/loss code"));
            }
        }
    }
    for at in find_all(m, b"/") {
        // `//` never survives masking; `/=` and `/` are both divisions.
        if in_any_span(test_spans, at) {
            continue;
        }
        let (_, end) = line_bounds(masked, line_starts, at);
        let divisor = &masked[at + 1..end];
        if TAPE_VALUE_NEEDLES.iter().any(|n| divisor.contains(n)) {
            consider(at, "division by a tape-derived value".to_string());
        }
    }
    candidates
}

/// `float-eq`: `==` / `!=` where either adjacent operand token looks like
/// an `f64` expression (a float literal, an `f64` cast, or a `.scalar`
/// read). Exact float comparison is almost always a bug outside tests;
/// legitimate exact sentinels (`p == 0.0` fast paths) opt out explicitly.
fn float_eq_candidates(
    masked: &str,
    test_spans: &[(usize, usize)],
    line_starts: &[usize],
) -> Vec<Candidate> {
    let m = masked.as_bytes();
    let token_char = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == '.';
    let is_floaty = |tok: &str| {
        let bytes = tok.as_bytes();
        let has_float_literal = bytes.windows(3).any(|w| {
            w[0].is_ascii_digit() && w[1] == b'.' && (w[2].is_ascii_digit() || w[2] == b'_')
        }) || (tok.len() >= 2
            && bytes[bytes.len() - 1] == b'.'
            && bytes[bytes.len() - 2].is_ascii_digit());
        has_float_literal || tok.ends_with("f64") || tok.ends_with("f32") || tok.contains("scalar")
    };
    let mut candidates = Vec::new();
    for needle in ["==", "!="] {
        for at in find_all(m, needle.as_bytes()) {
            if in_any_span(test_spans, at) {
                continue;
            }
            // Skip `<=`-style composites and pattern arms (`=>`).
            if at > 0 && matches!(m[at - 1], b'=' | b'<' | b'>' | b'!') {
                continue;
            }
            if m.get(at + 2) == Some(&b'=') {
                continue;
            }
            let (start, end) = line_bounds(masked, line_starts, at);
            let left_text = masked[start..at].trim_end();
            let right_text = masked[at + 2..end].trim_start();
            let left_tok: String = {
                let rev: String = left_text.chars().rev().take_while(|&c| token_char(c)).collect();
                rev.chars().rev().collect()
            };
            let right_tok: String = right_text.chars().take_while(|&c| token_char(c)).collect();
            if is_floaty(&left_tok) || is_floaty(&right_tok) {
                candidates.push(Candidate {
                    offset: at,
                    rule: Rule::FloatEq,
                    message: format!(
                        "`{needle}` between f64 expressions (`{left_tok}` vs `{right_tok}`); \
                         compare against a tolerance or annotate with \
                         `// pup-lint: allow(float-eq)`"
                    ),
                });
            }
        }
    }
    candidates
}

/// `crash-unsafe-io`: direct `fs::write(` / `File::create(` calls inside a
/// function whose body never calls `rename`. A write that lands in place
/// can be torn by a crash mid-write; the convention is to write a temporary
/// sibling and `fs::rename` it over the target (see `pup_ckpt::store`).
fn crash_unsafe_io_candidates(masked: &str, test_spans: &[(usize, usize)]) -> Vec<Candidate> {
    let m = masked.as_bytes();
    let fn_spans = fn_body_spans(m);
    let mut candidates = Vec::new();
    for needle in ["fs::write(", "File::create("] {
        for at in find_all(m, needle.as_bytes()) {
            if in_any_span(test_spans, at) {
                continue;
            }
            // The innermost enclosing fn body decides: a `rename(` anywhere
            // in it means this write is half of an atomic replace.
            let enclosing =
                fn_spans.iter().filter(|&&(s, e)| at >= s && at < e).min_by_key(|&&(s, e)| e - s);
            if let Some(&(s, e)) = enclosing {
                if masked[s..e].contains("rename(") {
                    continue;
                }
            }
            candidates.push(Candidate {
                offset: at,
                rule: Rule::CrashUnsafeIo,
                message: format!(
                    "`{needle}..)` with no `rename` in the enclosing function: a crash \
                     mid-write tears the file; write a temp sibling and `fs::rename` it \
                     into place, or annotate with `// pup-lint: allow(crash-unsafe-io)`"
                ),
            });
        }
    }
    candidates
}

/// Byte offsets where each line starts (for offset → line translation).
fn line_starts(source: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line containing byte `offset`.
fn line_of(starts: &[usize], offset: usize) -> usize {
    starts.partition_point(|&s| s <= offset)
}

/// One `// pup-lint: allow(a, b)` escape comment.
struct AllowSite {
    /// 1-based line of the comment.
    line: usize,
    names: Vec<String>,
}

/// Collects allow escapes. Only occurrences inside genuine *plain*
/// comments count: an allow spelled in a string literal (e.g. a lint
/// message that mentions the escape syntax) or in a `///` / `//!` doc
/// comment (documentation *about* escapes) is not an escape.
fn parse_allows(source: &str, comment_spans: &[(usize, usize)]) -> Vec<AllowSite> {
    const MARKER: &str = "pup-lint: allow(";
    let starts = line_starts(source);
    let mut allows = Vec::new();
    for at in find_all_str(source, MARKER) {
        let Some(&(cs, _)) = comment_spans.iter().find(|&&(s, e)| at >= s && at < e) else {
            continue;
        };
        let head = &source[cs..(cs + 3).min(source.len())];
        if head.starts_with("///")
            || head.starts_with("//!")
            || head.starts_with("/**")
            || head.starts_with("/*!")
        {
            continue;
        }
        let rest = &source[at + MARKER.len()..];
        let Some(close) = rest.find(')') else { continue };
        let names = rest[..close].split(',').map(|s| s.trim().to_string()).collect();
        allows.push(AllowSite { line: line_of(&starts, at), names });
    }
    allows
}

fn find_all_str(haystack: &str, needle: &str) -> Vec<usize> {
    find_all(haystack.as_bytes(), needle.as_bytes())
}

fn find_all(haystack: &[u8], needle: &[u8]) -> Vec<usize> {
    let mut hits = Vec::new();
    if needle.is_empty() || haystack.len() < needle.len() {
        return hits;
    }
    for i in 0..=haystack.len() - needle.len() {
        if &haystack[i..i + needle.len()] == needle {
            hits.push(i);
        }
    }
    hits
}

fn in_any_span(spans: &[(usize, usize)], offset: usize) -> bool {
    spans.iter().any(|&(s, e)| offset >= s && offset < e)
}

/// Brace-delimited spans of the item following each occurrence of `attr`
/// (e.g. the `mod tests { ... }` after `#[cfg(test)]`).
fn attribute_spans(masked: &[u8], attr: &[u8]) -> Vec<(usize, usize)> {
    find_all(masked, attr)
        .into_iter()
        .filter_map(|at| {
            let open = masked[at..].iter().position(|&b| b == b'{')? + at;
            Some((open, matching_delim(masked, open, b'{', b'}')))
        })
        .collect()
}

/// Paren-delimited spans following each occurrence of `prefix` (which must
/// end in `(`), e.g. the whole `Box::new(...)` argument list.
fn paren_spans(masked: &[u8], prefix: &[u8]) -> Vec<(usize, usize)> {
    find_all(masked, prefix)
        .into_iter()
        .map(|at| {
            let open = at + prefix.len() - 1;
            (open, matching_delim(masked, open, b'(', b')'))
        })
        .collect()
}

/// Offset one past the delimiter matching the one at `open`.
fn matching_delim(masked: &[u8], open: usize, oc: u8, cc: u8) -> usize {
    let mut depth = 0i32;
    for (j, &b) in masked.iter().enumerate().skip(open) {
        if b == oc {
            depth += 1;
        } else if b == cc {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    masked.len()
}

/// Body spans of `for` / `while` / `loop` statements. `for` inside an
/// `impl Trait for Type` header is skipped by scanning back to the start of
/// the current item.
fn loop_body_spans(masked: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (at, kw) in keyword_positions(masked) {
        if kw == "for" && is_impl_for(masked, at) {
            continue;
        }
        // The body is the first `{` after the keyword at bracket depth 0
        // (skipping over any closure braces nested in parens).
        let mut depth = 0i32;
        let mut open = None;
        for (j, &b) in masked.iter().enumerate().skip(at + kw.len()) {
            match b {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(j);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
        }
        if let Some(open) = open {
            spans.push((open, matching_delim(masked, open, b'{', b'}')));
        }
    }
    spans
}

/// Body spans of `fn` items and closures declared with the `fn` keyword:
/// for each `fn` token, the first `{` at bracket depth 0 before a `;`
/// (trait method declarations without bodies are skipped).
fn fn_body_spans(masked: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (at, kw) in keyword_positions_in(masked, &["fn"]).collect::<Vec<_>>() {
        let mut depth = 0i32;
        let mut open = None;
        for (j, &b) in masked.iter().enumerate().skip(at + kw.len()) {
            match b {
                b'(' | b'[' | b'<' => depth += 1,
                b')' | b']' | b'>' => depth -= 1,
                b'{' if depth <= 0 => {
                    open = Some(j);
                    break;
                }
                b';' if depth <= 0 => break,
                _ => {}
            }
        }
        if let Some(open) = open {
            spans.push((open, matching_delim(masked, open, b'{', b'}')));
        }
    }
    spans
}

/// Whether the `for` at `at` belongs to an `impl ... for ...` header: scan
/// back to the previous `;`/`{`/`}` and look for an `impl` token.
fn is_impl_for(masked: &[u8], at: usize) -> bool {
    let start = masked[..at]
        .iter()
        .rposition(|&b| b == b';' || b == b'{' || b == b'}')
        .map_or(0, |p| p + 1);
    keyword_positions_in(&masked[start..at], &["impl"]).next().is_some()
}

fn keyword_positions(masked: &[u8]) -> Vec<(usize, &'static str)> {
    keyword_positions_in(masked, &["for", "while", "loop"]).collect()
}

fn keyword_positions_in<'a>(
    masked: &'a [u8],
    keywords: &'a [&'static str],
) -> impl Iterator<Item = (usize, &'static str)> + 'a {
    let mut i = 0usize;
    std::iter::from_fn(move || {
        while i < masked.len() {
            let b = masked[i];
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < masked.len() && (masked[i].is_ascii_alphanumeric() || masked[i] == b'_') {
                    i += 1;
                }
                let word = &masked[start..i];
                if let Some(kw) = keywords.iter().find(|k| k.as_bytes() == word) {
                    return Some((start, *kw));
                }
            } else {
                i += 1;
            }
        }
        None
    })
}

/// Blanks out comments, string literals and char literals, preserving byte
/// offsets and newlines so positions map 1:1 back to the original source.
/// Also returns the byte spans of every comment (line and block), so
/// callers can distinguish "blanked because comment" from "blanked because
/// string literal".
fn mask_non_code_spans(src: &str) -> (String, Vec<(usize, usize)>) {
    let b = src.as_bytes();
    let mut out: Vec<u8> = b.iter().map(|&c| if c == b'\n' { b'\n' } else { b' ' }).collect();
    let mut comment_spans = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            comment_spans.push((start, i));
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let start = i;
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comment_spans.push((start, i));
        } else if c == b'"' {
            i += 1;
            while i < b.len() && b[i] != b'"' {
                i += if b[i] == b'\\' { 2 } else { 1 };
            }
            i += 1;
        } else if c == b'r'
            && matches!(b.get(i + 1), Some(&b'"') | Some(&b'#'))
            && (i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_'))
        {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                j += 1;
                // Find `"` followed by `hashes` hash marks.
                while j < b.len() {
                    if b[j] == b'"'
                        && b[j + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                i = j;
            } else {
                out[i] = c;
                i += 1;
            }
        } else if c == b'\'' {
            // Char literal (incl. escapes) vs. lifetime.
            if b.get(i + 1) == Some(&b'\\') {
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                i = j + 1;
            } else if b.get(i + 2) == Some(&b'\'') {
                i += 3;
            } else {
                out[i] = c;
                i += 1;
            }
        } else {
            out[i] = c;
            i += 1;
        }
    }
    // Only ASCII bytes were blanked, so the masked text is valid UTF-8.
    (String::from_utf8_lossy(&out).into_owned(), comment_spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(name: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(Path::new(name), src)
    }

    fn lint_strict(name: &str, src: &str) -> Vec<Diagnostic> {
        lint_source_with(Path::new(name), src, true)
    }

    #[test]
    fn unwrap_flagged_in_lib_code_only() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnwrapInLib);
        assert_eq!(d[0].line, 2);

        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n";
        assert!(lint_str("lib.rs", test_src).is_empty());
    }

    #[test]
    fn mutex_unwrap_flagged_once_and_subsumes_unwrap_in_lib() {
        let src = "fn depth(&self) -> usize {\n    self.inner.lock().unwrap().len()\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1, "one site, one diagnostic: {d:?}");
        assert_eq!(d[0].rule, Rule::MutexUnwrap);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("PoisonError::into_inner"));
    }

    #[test]
    fn mutex_unwrap_covers_rwlock_and_expect() {
        for guard in [".lock()", ".read()", ".write()"] {
            let unwrap = format!("fn f(&self) {{\n    self.m{guard}.unwrap();\n}}\n");
            let d = lint_str("lib.rs", &unwrap);
            assert_eq!(d.len(), 1, "{guard}: {d:?}");
            assert_eq!(d[0].rule, Rule::MutexUnwrap);
            let expect = format!("fn f(&self) {{\n    self.m{guard}.expect(\"poisoned\");\n}}\n");
            let d = lint_str("lib.rs", &expect);
            assert_eq!(d.len(), 1, "{guard} expect: {d:?}");
            assert_eq!(d[0].rule, Rule::MutexUnwrap);
        }
    }

    #[test]
    fn poison_safe_locking_is_clean() {
        let src = "fn depth(&self) -> usize {\n    self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    #[test]
    fn mutex_unwrap_respects_tests_and_escapes() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(m: &Mutex<u32>) -> u32 {\n        *m.lock().unwrap()\n    }\n}\n";
        assert!(lint_str("lib.rs", test_src).is_empty());
        let escaped = "fn f(m: &Mutex<u32>) -> u32 {\n    // pup-lint: allow(mutex-unwrap)\n    *m.lock().unwrap()\n}\n";
        assert!(lint_str("lib.rs", escaped).is_empty());
        // The escape must name the specific rule; unwrap-in-lib alone does
        // not cover a poisoned-lock unwrap.
        let wrong = "fn f(m: &Mutex<u32>) -> u32 {\n    // pup-lint: allow(unwrap-in-lib)\n    *m.lock().unwrap()\n}\n";
        let d = lint_strict("lib.rs", wrong);
        assert!(d.iter().any(|d| d.rule == Rule::MutexUnwrap), "{d:?}");
    }

    #[test]
    fn plain_result_unwrap_is_still_unwrap_in_lib() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnwrapInLib);
    }

    #[test]
    fn allow_comment_suppresses_on_same_or_previous_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // pup-lint: allow(unwrap-in-lib)\n";
        assert!(lint_str("lib.rs", same).is_empty());
        let above =
            "// pup-lint: allow(unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_str("lib.rs", above).is_empty());
        let wrong_rule =
            "// pup-lint: allow(clone-in-loop)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_str("lib.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn allow_inside_string_literal_is_not_an_escape() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let _m = \"pup-lint: allow(unwrap-in-lib)\";\n    x.unwrap()\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1, "a string mentioning the escape must not suppress: {d:?}");
        assert_eq!(d[0].rule, Rule::UnwrapInLib);
    }

    #[test]
    fn needles_inside_strings_and_comments_ignored() {
        let src = "fn f() -> &'static str {\n    // .unwrap() in a comment\n    \".unwrap() in a string\"\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    #[test]
    fn panic_in_backward_scoped_to_tape_files() {
        let src =
            "fn op() {\n    let b = Box::new(|g: &u32| {\n        panic!(\"bad\");\n    });\n}\n";
        let d = lint_str("ops.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::PanicInBackward);
        assert_eq!(d[0].line, 3);
        // Same text in a non-tape file: not this rule's business.
        assert!(lint_str("metrics.rs", src).is_empty());
        // panic! outside the closure is not this rule's business either.
        let outside = "fn op() {\n    panic!(\"bad\");\n}\n";
        assert!(lint_str("ops.rs", outside).is_empty());
    }

    #[test]
    fn clone_in_loop_flagged() {
        let src = "fn f(v: &[Vec<u32>]) {\n    for x in v {\n        let y = x.clone();\n        drop(y);\n    }\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::CloneInLoop);
        assert_eq!(d[0].line, 3);
        let outside =
            "fn f(v: &Vec<u32>) {\n    let y = v.clone();\n    for x in &y { drop(x); }\n}\n";
        assert!(lint_str("lib.rs", outside).is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "impl Clone for Foo {\n    fn clone(&self) -> Self { self.inner.clone() }\n}\n";
        // The `.clone()` is inside an impl body, not a loop body.
        assert!(lint_str("lib.rs", src).is_empty());
    }

    #[test]
    fn undocumented_pub_op_only_in_tensor_ops_module() {
        let src = "/// Documented.\npub fn good() {}\n\npub fn bad() {}\n";
        let d = lint_source(Path::new("crates/tensor/src/ops.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UndocumentedPubOp);
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("`bad`"));
        // Other files are covered by rustc's missing_docs instead.
        assert!(lint_str("other.rs", src).is_empty());
    }

    #[test]
    fn doc_comment_may_be_separated_by_attributes() {
        let src = "/// Documented.\n#[inline]\npub fn good() {}\n";
        assert!(lint_source(Path::new("crates/tensor/src/ops.rs"), src).is_empty());
    }

    #[test]
    fn raw_strings_and_char_literals_masked() {
        let src = "fn f() {\n    let s = r#\"x.unwrap()\"#;\n    let c = '\\'';\n    let lt: &'static str = \"\";\n    drop((s, c, lt));\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    // --- unguarded-ln ---------------------------------------------------

    #[test]
    fn unguarded_ln_flagged_in_model_code() {
        let src = "fn loss(p: f64) -> f64 {\n    p.ln()\n}\n";
        let d = lint_str("crates/models/src/pup.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnguardedLn);
        assert_eq!(d[0].line, 2);
        // Out of scope: not model/loss code.
        assert!(lint_str("crates/eval/src/metrics.rs", src).is_empty());
        // A guard on the same line quiets it.
        let guarded = "fn loss(p: f64) -> f64 {\n    p.max(EPS).ln()\n}\n";
        assert!(lint_str("crates/models/src/pup.rs", guarded).is_empty());
        // So does an explicit escape.
        let escaped =
            "fn loss(p: f64) -> f64 {\n    // pup-lint: allow(unguarded-ln)\n    p.ln()\n}\n";
        assert!(lint_str("crates/models/src/pup.rs", escaped).is_empty());
    }

    #[test]
    fn unguarded_division_by_tape_value_flagged() {
        let src = "fn norm(x: &Var, t: &Var) -> f64 {\n    x.scalar() / t.scalar()\n}\n";
        let d = lint_str("crates/models/src/trainer.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnguardedLn);
        let guarded =
            "fn norm(x: &Var, t: &Var) -> f64 {\n    x.scalar() / t.scalar().max(1e-12)\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", guarded).is_empty());
        // Division by a plain count is fine.
        let count = "fn mean(sum: f64, n: usize) -> f64 {\n    sum / n as f64\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", count).is_empty());
    }

    // --- float-eq -------------------------------------------------------

    #[test]
    fn float_eq_flagged_outside_tests() {
        let src = "fn f(p: f64) -> bool {\n    p == 0.0\n}\n";
        let d = lint_str("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::FloatEq);
        assert_eq!(d[0].line, 2);
        let ne = "fn f(p: f64) -> bool {\n    p != 1.5\n}\n";
        assert_eq!(lint_str("lib.rs", ne).len(), 1);
        // Integer comparisons are fine.
        let int = "fn f(r: usize) -> bool {\n    r % 2 == 0\n}\n";
        assert!(lint_str("lib.rs", int).is_empty());
        // Tests may compare exactly.
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(p: f64) -> bool {\n        p == 0.0\n    }\n}\n";
        assert!(lint_str("lib.rs", test_src).is_empty());
        // Escapes work.
        let escaped = "fn f(p: f64) -> bool {\n    p == 0.0 // pup-lint: allow(float-eq)\n}\n";
        assert!(lint_str("lib.rs", escaped).is_empty());
    }

    #[test]
    fn float_eq_ignores_composite_operators() {
        let src = "fn f(p: f64) -> bool {\n    p <= 0.0 || p >= 1.0\n}\n";
        assert!(lint_str("lib.rs", src).is_empty());
    }

    // --- crash-unsafe-io ------------------------------------------------

    #[test]
    fn in_place_write_without_rename_is_flagged() {
        let src = "fn save(p: &Path, s: &str) -> io::Result<()> {\n    fs::write(p, s)\n}\n";
        let d = lint_str("io.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::CrashUnsafeIo);
        assert_eq!(d[0].line, 2);

        let create = "fn save(p: &Path) -> io::Result<File> {\n    File::create(p)\n}\n";
        let d = lint_str("io.rs", create);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::CrashUnsafeIo);
    }

    #[test]
    fn write_temp_then_rename_is_clean() {
        let src = "fn save(p: &Path, s: &str) -> io::Result<()> {\n    let tmp = p.with_extension(\"tmp\");\n    fs::write(&tmp, s)?;\n    fs::rename(&tmp, p)\n}\n";
        assert!(lint_str("io.rs", src).is_empty());
        let create = "fn save(p: &Path, s: &[u8]) -> io::Result<()> {\n    let tmp = p.with_extension(\"tmp\");\n    let mut f = File::create(&tmp)?;\n    f.write_all(s)?;\n    f.sync_all()?;\n    fs::rename(&tmp, p)\n}\n";
        assert!(lint_str("io.rs", create).is_empty());
    }

    #[test]
    fn crash_unsafe_io_respects_tests_and_escapes() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn scratch(p: &Path) {\n        fs::write(p, \"x\").unwrap();\n    }\n}\n";
        assert!(lint_str("io.rs", test_src).is_empty());
        let escaped = "fn corrupt(p: &Path) -> io::Result<()> {\n    // pup-lint: allow(crash-unsafe-io)\n    fs::write(p, \"x\")\n}\n";
        assert!(lint_str("io.rs", escaped).is_empty());
    }

    #[test]
    fn rename_in_a_different_fn_does_not_launder_a_write() {
        let src = "fn save(p: &Path, s: &str) -> io::Result<()> {\n    fs::write(p, s)\n}\n\nfn other(a: &Path, b: &Path) -> io::Result<()> {\n    fs::rename(a, b)\n}\n";
        let d = lint_str("io.rs", src);
        assert_eq!(d.len(), 1, "the rename lives in an unrelated fn: {d:?}");
        assert_eq!(d[0].rule, Rule::CrashUnsafeIo);
    }

    // --- raw-print-in-lib -----------------------------------------------

    #[test]
    fn raw_print_flagged_in_lib_code() {
        let src = "fn f(x: u32) {\n    println!(\"{x}\");\n    eprintln!(\"{x}\");\n}\n";
        let d = lint_str("crates/models/src/trainer.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == Rule::RawPrintInLib));
        assert_eq!((d[0].line, d[1].line), (2, 3));
        // One candidate per call: `eprintln!` must not also match as
        // `println!`.
        assert!(d[1].message.contains("eprintln!"));
    }

    #[test]
    fn raw_print_exempt_in_bins_and_tests() {
        let src = "fn f(x: u32) {\n    println!(\"{x}\");\n}\n";
        assert!(lint_str("crates/core/src/bin/pup.rs", src).is_empty());
        assert!(lint_str("crates/analysis/src/main.rs", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    fn f(x: u32) {\n        println!(\"{x}\");\n    }\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", test_src).is_empty());
    }

    #[test]
    fn raw_print_escape_and_masking_work() {
        let escaped =
            "fn f(x: u32) {\n    // pup-lint: allow(raw-print-in-lib)\n    println!(\"{x}\");\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", escaped).is_empty());
        // Needles inside strings/comments never fire.
        let masked =
            "fn f() -> &'static str {\n    // println! here is prose\n    \"eprintln!\"\n}\n";
        assert!(lint_str("crates/models/src/trainer.rs", masked).is_empty());
    }

    // --- stale-allow ----------------------------------------------------

    #[test]
    fn stale_allow_reported_only_in_strict_mode() {
        let src = "// pup-lint: allow(unwrap-in-lib)\nfn f() -> u32 {\n    42\n}\n";
        assert!(lint_str("lib.rs", src).is_empty(), "non-strict ignores stale escapes");
        let d = lint_strict("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::StaleAllow);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("unwrap-in-lib"));
    }

    #[test]
    fn live_allow_is_not_stale() {
        let src = "// pup-lint: allow(unwrap-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_strict("lib.rs", src).is_empty());
    }

    #[test]
    fn unknown_rule_in_allow_reported_in_strict_mode() {
        let src = "// pup-lint: allow(no-such-rule)\nfn f() {}\n";
        let d = lint_strict("lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::StaleAllow);
        assert!(d[0].message.contains("no-such-rule"));
    }

    #[test]
    fn one_stale_name_in_multi_name_allow_is_reported() {
        let src = "// pup-lint: allow(unwrap-in-lib, clone-in-loop)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = lint_strict("lib.rs", src);
        assert_eq!(d.len(), 1, "only the clone-in-loop half is stale: {d:?}");
        assert!(d[0].message.contains("clone-in-loop"));
    }
}
