//! Universal gradient checking against central finite differences.
//!
//! [`gradcheck`] takes any *deterministic* scalar-valued function of a set
//! of [`Var`] inputs, runs one reverse-mode backward pass, then perturbs
//! every entry of every input by ±ε and compares the analytic gradient to
//! `(f(x+ε) - f(x-ε)) / 2ε`. Determinism matters: functions that sample
//! (dropout, negative sampling) must re-seed their RNG inside the closure so
//! every evaluation sees the same draw.
//!
//! Relative error uses `|a - n| / (1 + max(|a|, |n|))`, which behaves like
//! absolute error for small gradients and relative error for large ones.
//! Central differences have `O(ε²)` truncation error, so the tolerance must
//! be matched to ε: `ε = 1e-5, tol = 1e-4` (the default) suits f64 forward
//! math; for f32-like precision use something like `ε = 1e-3, tol = 1e-3`.

use std::fmt;

use pup_tensor::{Matrix, Var};

/// The gradcheck sweep registry: every op name exercised by the sweep test
/// (`tests/gradcheck_sweep.rs`), as recorded on the tape.
///
/// This list is deliberately written out by hand rather than derived from
/// `pup_tensor::ops::BUILTIN_OPS`: the graph auditor's op-coverage pass
/// diffs the two (and the op names scraped from `ops.rs` itself), so an op
/// added to the tensor crate without a matching sweep case fails
/// `audit-graph` instead of silently dodging gradcheck. The sweep test
/// asserts this registry is honest — that the ops it exercises record
/// exactly these names.
pub const SWEPT_OPS: &[&str] = &[
    "add",
    "sub",
    "mul",
    "scale",
    "matmul",
    "spmm",
    "tanh",
    "sigmoid",
    "leaky_relu",
    "square",
    "softplus",
    "gather_rows",
    "rowwise_dot",
    "row_sums",
    "sum",
    "concat_cols",
    "concat_rows",
    "slice_rows",
    "slice_cols",
    "add_row_broadcast",
    "dropout",
];

/// Step size and tolerance for a gradient check.
#[derive(Debug, Clone, Copy)]
pub struct GradcheckConfig {
    /// Central-difference step ε.
    pub eps: f64,
    /// Maximum allowed relative error.
    pub tol: f64,
}

impl Default for GradcheckConfig {
    fn default() -> Self {
        Self { eps: 1e-5, tol: 1e-4 }
    }
}

/// The entry with the largest relative error.
#[derive(Debug, Clone, Copy)]
pub struct WorstEntry {
    /// Index into the `inputs` slice.
    pub input: usize,
    /// Row of the worst entry.
    pub row: usize,
    /// Column of the worst entry.
    pub col: usize,
    /// Analytic (backward-pass) gradient.
    pub analytic: f64,
    /// Numeric (central-difference) gradient.
    pub numeric: f64,
}

/// Outcome of a successful check.
#[derive(Debug, Clone, Copy)]
pub struct GradcheckReport {
    /// Largest relative error across all entries of all inputs.
    pub max_rel_err: f64,
    /// Total number of scalar entries perturbed.
    pub entries_checked: usize,
    /// The worst entry (absent only when no entries were checked).
    pub worst: Option<WorstEntry>,
}

/// Why a gradient check could not pass.
#[derive(Debug, Clone)]
pub enum GradcheckError {
    /// `f` returned a non-1x1 value; backward needs a scalar loss.
    NonScalarLoss {
        /// Rows of the returned value.
        rows: usize,
        /// Columns of the returned value.
        cols: usize,
    },
    /// An input does not require gradient, so there is nothing to check.
    NonDifferentiableInput {
        /// Index into the `inputs` slice.
        input: usize,
    },
    /// The analytic gradient disagrees with central differences.
    ToleranceExceeded {
        /// Measurements from the failed sweep.
        report: GradcheckReport,
        /// The tolerance that was exceeded.
        tol: f64,
    },
}

impl fmt::Display for GradcheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GradcheckError::NonScalarLoss { rows, cols } => {
                write!(f, "gradcheck needs a scalar loss, got {rows}x{cols}")
            }
            GradcheckError::NonDifferentiableInput { input } => {
                write!(f, "input #{input} does not require gradient")
            }
            GradcheckError::ToleranceExceeded { report, tol } => match report.worst {
                Some(w) => write!(
                    f,
                    "gradient mismatch: max rel err {:.3e} > tol {tol:.3e} at input \
                     #{} entry ({},{}): analytic={:.6e}, numeric={:.6e}",
                    report.max_rel_err, w.input, w.row, w.col, w.analytic, w.numeric
                ),
                None => write!(f, "gradient mismatch with no entries checked"),
            },
        }
    }
}

impl std::error::Error for GradcheckError {}

/// Checks the analytic gradients of `f` with respect to every entry of
/// every input against central finite differences.
///
/// `f` is re-invoked `2 × total entries + 1` times and must be
/// deterministic across calls (re-seed any RNG inside). Inputs must be leaf
/// [`Var::param`] nodes; their values are restored after the sweep and their
/// gradient buffers are cleared before it.
pub fn gradcheck(
    f: impl Fn(&[Var]) -> Var,
    inputs: &[Var],
    cfg: GradcheckConfig,
) -> Result<GradcheckReport, GradcheckError> {
    for (idx, input) in inputs.iter().enumerate() {
        if !input.requires_grad() {
            return Err(GradcheckError::NonDifferentiableInput { input: idx });
        }
        input.zero_grad();
    }
    let loss = f(inputs);
    let (rows, cols) = loss.shape();
    if (rows, cols) != (1, 1) {
        return Err(GradcheckError::NonScalarLoss { rows, cols });
    }
    loss.backward();
    // A missing buffer means no gradient flowed into the input (e.g. a
    // backward closure forgot to accumulate): treat as all-zero and let the
    // numeric comparison expose it.
    let analytic: Vec<Matrix> = inputs
        .iter()
        .map(|v| v.grad().unwrap_or_else(|| Matrix::zeros(v.shape().0, v.shape().1)))
        .collect();

    let mut report = GradcheckReport { max_rel_err: 0.0, entries_checked: 0, worst: None };
    for (idx, input) in inputs.iter().enumerate() {
        let (rows, cols) = input.shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = input.value().get(r, c);
                input.update_value(|m| m.set(r, c, orig + cfg.eps));
                let up = f(inputs).scalar();
                input.update_value(|m| m.set(r, c, orig - cfg.eps));
                let down = f(inputs).scalar();
                input.update_value(|m| m.set(r, c, orig));
                let numeric = (up - down) / (2.0 * cfg.eps);
                let a = analytic[idx].get(r, c);
                let rel = (a - numeric).abs() / (1.0 + a.abs().max(numeric.abs()));
                report.entries_checked += 1;
                if rel >= report.max_rel_err {
                    report.max_rel_err = rel;
                    report.worst =
                        Some(WorstEntry { input: idx, row: r, col: c, analytic: a, numeric });
                }
            }
        }
    }
    if report.max_rel_err > cfg.tol {
        return Err(GradcheckError::ToleranceExceeded { report, tol: cfg.tol });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pup_tensor::ops;

    fn param(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Var {
        Var::param(Matrix::from_fn(rows, cols, f))
    }

    #[test]
    fn correct_gradient_passes() {
        let x = param(2, 3, |r, c| 0.3 * r as f64 - 0.2 * c as f64 + 0.1);
        let report = gradcheck(
            |inputs| ops::mean(&ops::square(&ops::tanh(&inputs[0]))),
            &[x],
            GradcheckConfig::default(),
        )
        .expect("tanh gradient is exact");
        assert_eq!(report.entries_checked, 6);
        assert!(report.max_rel_err < 1e-4);
    }

    #[test]
    fn deliberately_wrong_backward_is_caught() {
        // Forward computes x^2 but backward claims d/dx = 3x instead of 2x.
        let wrong_square = |x: &Var| {
            let value = x.value().map(|v| v * v);
            Var::custom_op(
                "wrong_square",
                value,
                vec![x.clone()],
                Box::new(|g, parents| {
                    let local = parents[0].value().scale(3.0);
                    parents[0].accumulate_grad(&g.hadamard(&local));
                }),
            )
        };
        let x = param(2, 2, |r, c| 1.0 + r as f64 + c as f64);
        let err = gradcheck(
            |inputs| ops::sum(&wrong_square(&inputs[0])),
            &[x],
            GradcheckConfig::default(),
        )
        .expect_err("a 1.5x-scaled gradient must not pass");
        let GradcheckError::ToleranceExceeded { report, .. } = err else {
            panic!("expected ToleranceExceeded, got {err}");
        };
        assert!(report.max_rel_err > 0.1, "mismatch should be large: {}", report.max_rel_err);
    }

    #[test]
    fn forgotten_accumulation_is_caught() {
        // Backward never accumulates: analytic gradient stays zero.
        let no_grad_identity = |x: &Var| {
            Var::custom_op(
                "no_grad_identity",
                x.value_clone(),
                vec![x.clone()],
                Box::new(|_, _| {}),
            )
        };
        let x = param(1, 3, |_, c| 0.5 + c as f64);
        let err = gradcheck(
            |inputs| ops::sum(&no_grad_identity(&inputs[0])),
            &[x],
            GradcheckConfig::default(),
        )
        .expect_err("zero analytic vs. unit numeric gradient must fail");
        assert!(matches!(err, GradcheckError::ToleranceExceeded { .. }));
    }

    #[test]
    fn non_scalar_loss_rejected() {
        let x = param(2, 2, |_, _| 1.0);
        let err = gradcheck(|inputs| inputs[0].clone(), &[x], GradcheckConfig::default())
            .expect_err("2x2 output is not a loss");
        assert!(matches!(err, GradcheckError::NonScalarLoss { rows: 2, cols: 2 }));
    }

    #[test]
    fn constant_input_rejected() {
        let c = Var::constant(Matrix::ones(1, 1));
        let err = gradcheck(|inputs| ops::sum(&inputs[0]), &[c], GradcheckConfig::default())
            .expect_err("constants have no gradient to check");
        assert!(matches!(err, GradcheckError::NonDifferentiableInput { input: 0 }));
    }

    #[test]
    fn tolerance_must_match_eps() {
        // With an f32-appropriate step (ε = 1e-3) the truncation error of
        // central differences on a curved function is ~ε² = 1e-6: far below
        // a matched tol of 1e-3, far above an unmatched tol of 1e-9.
        let f32_cfg = GradcheckConfig { eps: 1e-3, tol: 1e-3 };
        let x = param(2, 2, |r, c| 0.4 * r as f64 - 0.3 * c as f64 + 0.2);
        let loss = |inputs: &[Var]| ops::mean(&ops::square(&ops::sigmoid(&inputs[0])));
        let report =
            gradcheck(loss, std::slice::from_ref(&x), f32_cfg).expect("matched tol passes");
        assert!(report.max_rel_err < 1e-3);
        assert!(report.max_rel_err > 0.0, "coarse eps should leave measurable truncation error");
        let too_tight = GradcheckConfig { eps: 1e-3, tol: 1e-9 };
        let err = gradcheck(loss, &[x], too_tight)
            .expect_err("tol far below the eps-induced truncation error must fail");
        assert!(matches!(err, GradcheckError::ToleranceExceeded { .. }));
    }
}
