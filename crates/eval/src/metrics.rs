//! Ranking metrics: Recall@K and NDCG@K (paper §V-A1, following He et
//! al. [6]).

/// Recall@K: fraction of the ground-truth items that appear in the top-K.
///
/// `ranked` is the recommendation list (best first), `ground_truth` a sorted
/// slice of relevant item ids. Returns 0 when the ground truth is empty.
pub fn recall_at_k(ranked: &[u32], ground_truth: &[u32], k: usize) -> f64 {
    debug_assert!(is_sorted(ground_truth), "ground truth must be sorted");
    if ground_truth.is_empty() {
        return 0.0;
    }
    // Count each ground-truth item at most once: recommendation lists are
    // normally duplicate-free, but a duplicated hit must not push recall
    // above 1.
    let mut hit = vec![false; ground_truth.len()];
    for i in ranked.iter().take(k) {
        if let Ok(at) = ground_truth.binary_search(i) {
            hit[at] = true;
        }
    }
    let hits = hit.iter().filter(|&&h| h).count();
    hits as f64 / ground_truth.len() as f64
}

/// NDCG@K with binary relevance: DCG of the produced ranking over the ideal
/// DCG. Returns 0 when the ground truth is empty.
pub fn ndcg_at_k(ranked: &[u32], ground_truth: &[u32], k: usize) -> f64 {
    debug_assert!(is_sorted(ground_truth), "ground truth must be sorted");
    if ground_truth.is_empty() {
        return 0.0;
    }
    // As in recall: only an item's first occurrence in the list is a gain,
    // so a duplicated hit cannot lift DCG above the ideal DCG.
    let mut seen = vec![false; ground_truth.len()];
    let mut dcg = 0.0;
    for (pos, item) in ranked.iter().take(k).enumerate() {
        if let Ok(at) = ground_truth.binary_search(item) {
            if !seen[at] {
                seen[at] = true;
                dcg += 1.0 / ((pos + 2) as f64).log2();
            }
        }
    }
    let ideal_hits = ground_truth.len().min(k);
    let idcg: f64 = (0..ideal_hits).map(|pos| 1.0 / ((pos + 2) as f64).log2()).sum();
    dcg / idcg
}

fn is_sorted(v: &[u32]) -> bool {
    v.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let ranked = vec![3, 1, 4];
        let gt = vec![1, 3, 4];
        assert_eq!(recall_at_k(&ranked, &gt, 3), 1.0);
        assert!((ndcg_at_k(&ranked, &gt, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ground_truth_scores_zero() {
        assert_eq!(recall_at_k(&[1, 2], &[], 2), 0.0);
        assert_eq!(ndcg_at_k(&[1, 2], &[], 2), 0.0);
    }

    #[test]
    fn recall_counts_topk_hits_only() {
        let ranked = vec![9, 8, 1, 2];
        let gt = vec![1, 2];
        assert_eq!(recall_at_k(&ranked, &gt, 2), 0.0);
        assert_eq!(recall_at_k(&ranked, &gt, 3), 0.5);
        assert_eq!(recall_at_k(&ranked, &gt, 4), 1.0);
    }

    #[test]
    fn ndcg_rewards_earlier_hits() {
        let gt = vec![5];
        let early = ndcg_at_k(&[5, 1, 2], &gt, 3);
        let late = ndcg_at_k(&[1, 2, 5], &gt, 3);
        assert!((early - 1.0).abs() < 1e-12, "hit at rank 0 is ideal");
        assert!(late < early && late > 0.0);
        // Exact value: (1/log2(4)) / (1/log2(2)) = 0.5.
        assert!((late - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ndcg_caps_ideal_at_k() {
        // 3 relevant items but k=1: a single hit at rank 0 is already ideal.
        let gt = vec![1, 2, 3];
        assert!((ndcg_at_k(&[1], &gt, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_bounded() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let ranked: Vec<u32> = (0..20).map(|_| rng.gen_range(0..50)).collect();
            let mut gt: Vec<u32> = (0..5).map(|_| rng.gen_range(0..50)).collect();
            gt.sort_unstable();
            gt.dedup();
            let k = rng.gen_range(1..25);
            let r = recall_at_k(&ranked, &gt, k);
            let n = ndcg_at_k(&ranked, &gt, k);
            assert!((0.0..=1.0).contains(&r));
            assert!((0.0..=1.0 + 1e-12).contains(&n));
        }
    }
}
