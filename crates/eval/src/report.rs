//! Plain-text table rendering for experiment reports (the bench binaries
//! print these to stdout and EXPERIMENTS.md records them).

use crate::ranking::MetricReport;

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a row built from a [`MetricReport`], with recall/NDCG columns
    /// per cutoff in report order.
    pub fn push_report(&mut self, report: &MetricReport) {
        let mut cells = vec![report.model.clone()];
        for &(_, m) in &report.at_k {
            cells.push(format!("{:.4}", m.recall));
            cells.push(format!("{:.4}", m.ndcg));
        }
        self.push_row(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align the first column (names), right-align numbers.
                if i == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("{cell:>w$}"));
                }
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Standard header for a `Recall/NDCG @ K` table.
    pub fn metric_headers(ks: &[usize]) -> Vec<String> {
        let mut h = vec!["method".to_string()];
        for &k in ks {
            h.push(format!("Recall@{k}"));
            h.push(format!("NDCG@{k}"));
        }
        h
    }

    /// Creates a metric table for the given cutoffs.
    pub fn for_metrics(ks: &[usize]) -> Self {
        let headers = Self::metric_headers(ks);
        Self { headers, rows: Vec::new() }
    }
}

/// Relative improvement in percent, `(new - base) / base * 100`.
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    // pup-lint: allow(float-eq) — exact-zero guard before dividing by `base`
    if base == 0.0 {
        return 0.0;
    }
    (new - base) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::MetricPair;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(&["method", "Recall@50"]);
        t.push_row(vec!["ItemPop".into(), "0.0401".into()]);
        t.push_row(vec!["PUP".into(), "0.1765".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("method"));
        assert!(lines[2].starts_with("ItemPop"));
        assert!(lines[3].starts_with("PUP"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn push_report_formats_metrics() {
        let mut t = Table::for_metrics(&[50, 100]);
        t.push_report(&MetricReport {
            model: "PUP".into(),
            at_k: vec![
                (50, MetricPair { recall: 0.1765, ndcg: 0.0816 }),
                (100, MetricPair { recall: 0.2715, ndcg: 0.1058 }),
            ],
            n_users: 10,
        });
        let s = t.render();
        assert!(s.contains("0.1765"));
        assert!(s.contains("0.1058"));
        assert!(s.contains("NDCG@100"));
    }

    #[test]
    fn improvement_percentage() {
        assert!((improvement_pct(0.1679, 0.1765) - 5.122).abs() < 0.01);
        assert_eq!(improvement_pct(0.0, 1.0), 0.0);
    }
}
