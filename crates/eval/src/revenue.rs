//! Value-aware evaluation (the paper's §VII future work: "how to utilize
//! PUP to maximize the revenue ... extends price-aware recommendation to
//! value-aware recommendation").
//!
//! Revenue@K counts the *money* recovered by the top-K list: the summed
//! price of the ground-truth items the list actually hits, normalized by
//! the total price of the ground truth. An accuracy-equal model that hits
//! the user's expensive purchases scores higher than one that hits cheap
//! ones — exactly the provider-side objective the paper gestures at.

use pup_data::Split;
use pup_models::Recommender;

use crate::ranking::rank_candidates;

/// Revenue-oriented evaluation result.
#[derive(Clone, Debug)]
pub struct RevenueReport {
    /// Model name.
    pub model: String,
    /// `(k, mean revenue recall)` per cutoff: hit-item price mass over
    /// ground-truth price mass, averaged over users.
    pub revenue_recall_at_k: Vec<(usize, f64)>,
    /// `(k, mean absolute hit revenue)` per cutoff, in raw price units.
    pub hit_revenue_at_k: Vec<(usize, f64)>,
    /// Users contributing to the averages.
    pub n_users: usize,
}

impl RevenueReport {
    /// Revenue recall at cutoff `k`.
    ///
    /// # Panics
    /// Panics when `k` was not evaluated.
    pub fn revenue_recall(&self, k: usize) -> f64 {
        self.revenue_recall_at_k
            .iter()
            .find(|&&(kk, _)| kk == k)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("cutoff {k} was not evaluated"))
    }
}

/// Evaluates the revenue captured by top-K recommendations under the
/// standard protocol (candidates = all items minus train/valid positives).
///
/// `item_price[i]` is the raw price of item `i` (from `Dataset::item_price`).
pub fn evaluate_revenue(
    model: &dyn Recommender,
    split: &Split,
    item_price: &[f64],
    ks: &[usize],
) -> RevenueReport {
    assert_eq!(item_price.len(), split.n_items, "one price per item required");
    assert!(!ks.is_empty(), "need at least one cutoff");
    let train = split.train_items_by_user();
    let valid = split.valid_items_by_user();
    let test = split.test_items_by_user();
    let max_k = ks.iter().copied().max().unwrap_or(0);

    let mut recall_sums = vec![0.0; ks.len()];
    let mut hit_sums = vec![0.0; ks.len()];
    let mut n_users = 0usize;
    for u in 0..split.n_users {
        if test[u].is_empty() {
            continue;
        }
        let gt = &test[u];
        let gt_value: f64 = gt.iter().map(|&i| item_price[i as usize]).sum();
        if gt_value <= 0.0 {
            continue;
        }
        let exclude =
            |i: &u32| train[u].binary_search(i).is_ok() || valid[u].binary_search(i).is_ok();
        // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
        let pool: Vec<u32> = (0..split.n_items as u32).filter(|i| !exclude(i)).collect();
        let scores = model.score_items(u);
        let ranked = rank_candidates(&scores, &pool, max_k);
        for (slot, &k) in ks.iter().enumerate() {
            let hit_value: f64 = ranked
                .iter()
                .take(k)
                .filter(|i| gt.binary_search(i).is_ok())
                .map(|&i| item_price[i as usize])
                .sum();
            recall_sums[slot] += hit_value / gt_value;
            hit_sums[slot] += hit_value;
        }
        n_users += 1;
    }
    let denom = n_users.max(1) as f64;
    RevenueReport {
        model: model.name().to_string(),
        revenue_recall_at_k: ks.iter().zip(&recall_sums).map(|(&k, &s)| (k, s / denom)).collect(),
        hit_revenue_at_k: ks.iter().zip(&hit_sums).map(|(&k, &s)| (k, s / denom)).collect(),
        n_users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Vec<f64>);
    impl Recommender for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn score_items(&self, _u: usize) -> Vec<f64> {
            self.0.clone()
        }
        fn n_users(&self) -> usize {
            usize::MAX
        }
    }

    fn split(test: Vec<(usize, usize)>) -> Split {
        Split { n_users: 1, n_items: 4, train: vec![], valid: vec![], test }
    }

    #[test]
    fn perfect_list_recovers_all_revenue() {
        let s = split(vec![(0, 1), (0, 3)]);
        let prices = [1.0, 10.0, 1.0, 40.0];
        let m = Fixed(vec![0.0, 5.0, 0.0, 9.0]);
        let r = evaluate_revenue(&m, &s, &prices, &[2]);
        assert!((r.revenue_recall(2) - 1.0).abs() < 1e-12);
        assert!((r.hit_revenue_at_k[0].1 - 50.0).abs() < 1e-12);
    }

    #[test]
    fn expensive_hits_beat_cheap_hits_at_equal_accuracy() {
        // Both models hit exactly one of the two ground-truth items; hitting
        // the expensive one must yield higher revenue recall.
        let s = split(vec![(0, 1), (0, 3)]);
        let prices = [1.0, 10.0, 1.0, 40.0];
        let hits_cheap = Fixed(vec![0.0, 9.0, 8.0, 0.0]); // top-2: items 1, 2
        let hits_pricey = Fixed(vec![0.0, 0.0, 8.0, 9.0]); // top-2: items 3, 2
        let rc = evaluate_revenue(&hits_cheap, &s, &prices, &[2]).revenue_recall(2);
        let rp = evaluate_revenue(&hits_pricey, &s, &prices, &[2]).revenue_recall(2);
        assert!((rc - 0.2).abs() < 1e-12, "10 of 50 = 0.2, got {rc}");
        assert!((rp - 0.8).abs() < 1e-12, "40 of 50 = 0.8, got {rp}");
    }

    #[test]
    fn users_without_test_items_are_skipped() {
        let s = Split { n_users: 2, n_items: 4, train: vec![], valid: vec![], test: vec![(0, 1)] };
        let prices = [1.0; 4];
        let m = Fixed(vec![1.0, 2.0, 3.0, 4.0]);
        let r = evaluate_revenue(&m, &s, &prices, &[2]);
        assert_eq!(r.n_users, 1);
    }

    #[test]
    #[should_panic(expected = "one price per item")]
    fn rejects_wrong_price_count() {
        let s = split(vec![(0, 1)]);
        let m = Fixed(vec![1.0; 4]);
        let _ = evaluate_revenue(&m, &s, &[1.0, 2.0], &[1]);
    }
}
