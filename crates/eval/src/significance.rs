//! Statistical significance testing (paper §V-B4: "results of t-tests
//! indicate that the improvements are statistically significant for
//! p < 0.005").
//!
//! Implements the paired t-test over per-user metric values, with the
//! Student-t CDF evaluated through the regularized incomplete beta function
//! (continued-fraction expansion) — no external stats dependency.

/// Result of a paired t-test.
#[derive(Clone, Copy, Debug)]
pub struct TTestResult {
    /// The t statistic (positive when `a` beats `b` on average).
    pub t: f64,
    /// Degrees of freedom (`n - 1`).
    pub dof: usize,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Mean of the paired differences `a - b`.
    pub mean_diff: f64,
}

impl TTestResult {
    /// Whether `a > b` at the given two-sided significance level.
    pub fn significant_improvement(&self, alpha: f64) -> bool {
        self.mean_diff > 0.0 && self.p_two_sided < alpha
    }
}

/// Paired t-test between two per-user metric vectors.
///
/// # Panics
/// Panics when the vectors differ in length or have fewer than 2 pairs.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> TTestResult {
    assert_eq!(a.len(), b.len(), "paired t-test needs equal-length samples");
    assert!(a.len() >= 2, "paired t-test needs at least 2 pairs");
    let n = a.len() as f64;
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1.0);
    let se = (var / n).sqrt();
    let dof = a.len() - 1;
    // pup-lint: allow(float-eq) — zero standard error is an exact degenerate case
    if se == 0.0 {
        // All differences identical: degenerate — p is 0 unless the mean is 0.
        // pup-lint: allow(float-eq) — so is an exactly-zero mean difference
        let mean_is_zero = mean == 0.0;
        let p = if mean_is_zero { 1.0 } else { 0.0 };
        return TTestResult {
            t: if mean_is_zero { 0.0 } else { f64::INFINITY * mean.signum() },
            dof,
            p_two_sided: p,
            mean_diff: mean,
        };
    }
    let t = mean / se;
    let p = 2.0 * student_t_sf(t.abs(), dof as f64);
    TTestResult { t, dof, p_two_sided: p.clamp(0.0, 1.0), mean_diff: mean }
}

/// Survival function `P(T > t)` of Student's t with `v` degrees of freedom,
/// via `I_x(v/2, 1/2)` with `x = v / (v + t²)`.
pub fn student_t_sf(t: f64, v: f64) -> f64 {
    assert!(t >= 0.0, "survival function expects t >= 0");
    assert!(v > 0.0, "degrees of freedom must be positive");
    let x = v / (v + t * t);
    0.5 * incomplete_beta(0.5 * v, 0.5, x)
}

/// Regularized incomplete beta function `I_x(a, b)` via Lentz's continued
/// fraction (Numerical Recipes §6.4).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    // pup-lint: allow(float-eq) — exact domain endpoints of I_x(a, b)
    if x == 0.0 {
        return 0.0;
    }
    // pup-lint: allow(float-eq) — exact domain endpoints of I_x(a, b)
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The continued fraction converges fastest for x < (a+1)/(a+b+2); apply
    // the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) directly (not recursively —
    // a == b at x = 0.5 would otherwise never terminate).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)` (g = 7, n = 9 coefficients).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0");
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform CDF).
        for x in [0.1, 0.35, 0.8] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        let v = incomplete_beta(2.5, 4.0, 0.3);
        let w = 1.0 - incomplete_beta(4.0, 2.5, 0.7);
        assert!((v - w).abs() < 1e-10);
    }

    #[test]
    fn student_t_sf_matches_reference_values() {
        // Reference: P(T > 2.0) with 10 dof ≈ 0.036694; with 1 dof (Cauchy)
        // P(T > 1) = 0.25 exactly.
        assert!((student_t_sf(1.0, 1.0) - 0.25).abs() < 1e-9);
        assert!((student_t_sf(2.0, 10.0) - 0.036694).abs() < 1e-5);
        // Large dof approaches the normal tail: P(Z > 1.96) ≈ 0.025.
        assert!((student_t_sf(1.96, 100_000.0) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn paired_t_test_detects_a_clear_improvement() {
        let a: Vec<f64> = (0..40).map(|i| 0.5 + (i % 5) as f64 * 0.01).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.05).collect();
        let r = paired_t_test(&a, &b);
        assert!(r.mean_diff > 0.049);
        assert!(r.p_two_sided < 1e-6);
        assert!(r.significant_improvement(0.005));
    }

    #[test]
    fn paired_t_test_on_noise_is_insignificant() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a: Vec<f64> = (0..100).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = a.iter().map(|x| x + rng.gen_range(-0.01..0.01)).collect();
        let r = paired_t_test(&a, &b);
        assert!(r.p_two_sided > 0.005, "pure noise should not be significant: p={}", r.p_two_sided);
    }

    #[test]
    fn degenerate_identical_samples() {
        let a = vec![0.5; 10];
        let r = paired_t_test(&a, &a);
        assert_eq!(r.p_two_sided, 1.0);
        assert!(!r.significant_improvement(0.05));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rejects_mismatched_lengths() {
        let _ = paired_t_test(&[1.0, 2.0], &[1.0]);
    }
}
