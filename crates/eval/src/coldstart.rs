//! Cold-start evaluation on unexplored categories (paper §V-F).
//!
//! A category is *unexplored* for a user when none of her training items
//! belong to it. Following Chen et al. [34], two candidate-pool protocols:
//!
//! - **CIR** (category item recommendation): the pool is every item of the
//!   *test-positive unexplored* categories.
//! - **UCIR** (unexplored category item recommendation): the pool is every
//!   item outside the *train-positive* categories.
//!
//! Only test items from unexplored categories count as ground truth.

use std::collections::BTreeSet;

use pup_data::{Dataset, Split};
use pup_models::Recommender;

use crate::ranking::{evaluate_pools, MetricReport};

/// Candidate-pool protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColdStartProtocol {
    /// Pool = items of the user's test-positive unexplored categories.
    Cir,
    /// Pool = items of all categories the user did not train on.
    Ucir,
}

/// The per-user cold-start evaluation instances.
#[derive(Clone, Debug)]
pub struct ColdStartTask {
    /// Users with at least one test item in an unexplored category.
    pub users: Vec<usize>,
    /// Candidate pool per user (sorted item ids).
    pub pools: Vec<Vec<u32>>,
    /// Ground-truth test items per user (sorted, subset of the pool).
    pub truths: Vec<Vec<u32>>,
    /// Which protocol built this task.
    pub protocol: ColdStartProtocol,
}

/// Builds the cold-start task from a dataset and its split.
pub fn build_cold_start_task(
    dataset: &Dataset,
    split: &Split,
    protocol: ColdStartProtocol,
) -> ColdStartTask {
    let train_lists = split.train_items_by_user();
    let test_lists = split.test_items_by_user();
    let by_category = dataset.category_item_lists();

    let mut users = Vec::new();
    let mut pools = Vec::new();
    let mut truths = Vec::new();
    for u in 0..split.n_users {
        // Categories of the user's training items.
        let train_cats: BTreeSet<usize> =
            train_lists[u].iter().map(|&i| dataset.item_category[i as usize]).collect();
        // Test items in unexplored categories ("filter out those items in
        // the test set belonging to explored categories").
        let truth: Vec<u32> = test_lists[u]
            .iter()
            .copied()
            .filter(|&i| !train_cats.contains(&dataset.item_category[i as usize]))
            .collect();
        if truth.is_empty() {
            continue;
        }
        let pool: Vec<u32> = match protocol {
            ColdStartProtocol::Cir => {
                let positive_cats: BTreeSet<usize> =
                    truth.iter().map(|&i| dataset.item_category[i as usize]).collect();
                let mut p: Vec<u32> =
                    positive_cats.iter().flat_map(|&c| by_category[c].iter().copied()).collect();
                p.sort_unstable();
                p
            }
            ColdStartProtocol::Ucir => {
                let mut p: Vec<u32> = (0..dataset.n_categories)
                    .filter(|c| !train_cats.contains(c))
                    .flat_map(|c| by_category[c].iter().copied())
                    .collect();
                p.sort_unstable();
                p
            }
        };
        users.push(u);
        pools.push(pool);
        truths.push(truth);
    }
    ColdStartTask { users, pools, truths, protocol }
}

/// Evaluates a model under a cold-start task.
pub fn evaluate_cold_start(
    model: &dyn Recommender,
    task: &ColdStartTask,
    ks: &[usize],
) -> MetricReport {
    evaluate_pools(model, &task.users, &task.pools, &task.truths, ks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pup_data::Interaction;

    /// 3 categories x 2 items each; user 0 trains on category 0, tests on
    /// category 1.
    fn fixture() -> (Dataset, Split) {
        let dataset = Dataset {
            n_users: 2,
            n_items: 6,
            n_categories: 3,
            n_price_levels: 2,
            item_price: vec![1.0; 6],
            item_category: vec![0, 0, 1, 1, 2, 2],
            item_price_level: vec![0, 1, 0, 1, 0, 1],
            interactions: vec![
                Interaction { user: 0, item: 0, timestamp: 0 },
                Interaction { user: 0, item: 2, timestamp: 1 },
            ],
        };
        let split = Split {
            n_users: 2,
            n_items: 6,
            train: vec![(0, 0), (0, 1)],
            valid: vec![],
            test: vec![(0, 2), (0, 0)],
        };
        (dataset, split)
    }

    #[test]
    fn cir_pool_is_test_positive_unexplored_categories() {
        let (d, s) = fixture();
        let task = build_cold_start_task(&d, &s, ColdStartProtocol::Cir);
        assert_eq!(task.users, vec![0]);
        // Test item 2 is in category 1 (unexplored); test item 0 is category
        // 0 (explored) and filtered out of the truth.
        assert_eq!(task.truths[0], vec![2]);
        assert_eq!(task.pools[0], vec![2, 3], "CIR pool is exactly category 1's items");
    }

    #[test]
    fn ucir_pool_covers_all_unexplored_categories() {
        let (d, s) = fixture();
        let task = build_cold_start_task(&d, &s, ColdStartProtocol::Ucir);
        assert_eq!(task.pools[0], vec![2, 3, 4, 5], "UCIR pool = categories 1 and 2");
    }

    #[test]
    fn users_without_unexplored_test_items_are_dropped() {
        let (d, mut s) = fixture();
        // Make user 0's test purely explored.
        s.test = vec![(0, 0)];
        let task = build_cold_start_task(&d, &s, ColdStartProtocol::Cir);
        assert!(task.users.is_empty());
    }

    #[test]
    fn paper_example_protocol_semantics() {
        // Paper §V-F: 7 categories {A..G}; train on A,B,C; test positives in
        // E. CIR pool = items of E; UCIR pool = items of {D,E,F,G}.
        let n_items = 7;
        let dataset = Dataset {
            n_users: 1,
            n_items,
            n_categories: 7,
            n_price_levels: 1,
            item_price: vec![1.0; n_items],
            item_category: (0..7).collect(),
            item_price_level: vec![0; n_items],
            interactions: vec![Interaction { user: 0, item: 0, timestamp: 0 }],
        };
        let split = Split {
            n_users: 1,
            n_items,
            train: vec![(0, 0), (0, 1), (0, 2)], // categories A, B, C
            valid: vec![],
            test: vec![(0, 4)], // category E
        };
        let cir = build_cold_start_task(&dataset, &split, ColdStartProtocol::Cir);
        assert_eq!(cir.pools[0], vec![4]);
        let ucir = build_cold_start_task(&dataset, &split, ColdStartProtocol::Ucir);
        assert_eq!(ucir.pools[0], vec![3, 4, 5, 6]);
    }

    #[test]
    fn evaluation_runs_on_task() {
        struct Uniform;
        impl Recommender for Uniform {
            fn name(&self) -> &str {
                "uniform"
            }
            fn score_items(&self, _u: usize) -> Vec<f64> {
                vec![0.0; 6]
            }
            fn n_users(&self) -> usize {
                usize::MAX
            }
        }
        let (d, s) = fixture();
        let task = build_cold_start_task(&d, &s, ColdStartProtocol::Cir);
        let r = evaluate_cold_start(&Uniform, &task, &[1, 2]);
        assert_eq!(r.n_users, 1);
        // Tie-break by id puts item 2 first: recall@1 = 1.
        assert_eq!(r.at(1).recall, 1.0);
    }
}
