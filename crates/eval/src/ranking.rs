//! Full-ranking top-K evaluation (paper §V-A1).
//!
//! For every user with test positives, all items the user has not interacted
//! with in training (or validation) form the candidate pool; the model ranks
//! them and Recall@K / NDCG@K are averaged over users.

use pup_data::Split;
use pup_models::{Recommender, ScoreError};

use crate::metrics::{ndcg_at_k, recall_at_k};

/// Metrics at one cutoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricPair {
    /// Recall@K averaged over evaluated users.
    pub recall: f64,
    /// NDCG@K averaged over evaluated users.
    pub ndcg: f64,
}

/// Evaluation result across cutoffs.
#[derive(Clone, Debug)]
pub struct MetricReport {
    /// Model name.
    pub model: String,
    /// `(k, metrics)` per requested cutoff, in input order.
    pub at_k: Vec<(usize, MetricPair)>,
    /// Number of users that contributed to the averages.
    pub n_users: usize,
}

impl MetricReport {
    /// Metrics at cutoff `k`.
    ///
    /// # Panics
    /// Panics when `k` was not evaluated.
    pub fn at(&self, k: usize) -> MetricPair {
        self.at_k
            .iter()
            .find(|&&(kk, _)| kk == k)
            .map(|&(_, m)| m)
            .unwrap_or_else(|| panic!("cutoff {k} was not evaluated"))
    }
}

/// Ranks the `candidates` by `scores` (descending), returning item ids.
/// Ties break by item id for determinism.
///
/// # Panics
/// Panics when a candidate id is not an index into `scores`; use
/// [`try_rank_candidates`] for untrusted candidate lists.
pub fn rank_candidates(scores: &[f64], candidates: &[u32], top: usize) -> Vec<u32> {
    try_rank_candidates(scores, candidates, top).unwrap_or_else(|e| panic!("rank_candidates: {e}"))
}

/// Bounds-checked [`rank_candidates`]: a candidate id outside `scores`
/// surfaces as a typed [`ScoreError`] instead of an indexing panic, so a
/// serving path fed a malformed candidate pool can reject the request.
// pup-hot: eval-rank
pub fn try_rank_candidates(
    scores: &[f64],
    candidates: &[u32],
    top: usize,
) -> Result<Vec<u32>, ScoreError> {
    let _span = pup_obs::span("rank.topk");
    if let Some(&bad) = candidates.iter().find(|&&c| (c as usize) >= scores.len()) {
        return Err(ScoreError::ItemOutOfRange { item: bad as usize, n_items: scores.len() });
    }
    let mut idx: Vec<u32> = candidates.to_vec();
    let top = top.min(idx.len());
    // pup-audit: allow(hotpath-panic): candidate ids are validated against scores.len() at entry
    idx.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]).then(a.cmp(&b)));
    idx.truncate(top);
    Ok(idx)
}

/// Standard evaluation: every user with test items, candidates are all items
/// minus the user's train/validation positives.
pub fn evaluate(model: &dyn Recommender, split: &Split, ks: &[usize]) -> MetricReport {
    let users: Vec<usize> = (0..split.n_users).collect();
    evaluate_users(model, split, &users, ks)
}

/// Evaluation restricted to a user subset (Table VI's consistency groups).
pub fn evaluate_users(
    model: &dyn Recommender,
    split: &Split,
    users: &[usize],
    ks: &[usize],
) -> MetricReport {
    let train = split.train_items_by_user();
    let valid = split.valid_items_by_user();
    let test = split.test_items_by_user();
    let mut pools = Vec::with_capacity(users.len());
    let mut truths = Vec::with_capacity(users.len());
    let mut kept_users = Vec::with_capacity(users.len());
    for &u in users {
        if test[u].is_empty() {
            continue;
        }
        let exclude =
            |i: &u32| train[u].binary_search(i).is_ok() || valid[u].binary_search(i).is_ok();
        // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
        let pool: Vec<u32> = (0..split.n_items as u32).filter(|i| !exclude(i)).collect();
        pools.push(pool);
        // pup-lint: allow(clone-in-loop) — per-user ground-truth copy, once per evaluation.
        truths.push(test[u].clone());
        kept_users.push(u);
    }
    evaluate_pools(model, &kept_users, &pools, &truths, ks)
}

/// Per-user evaluation results, for significance testing (paper §V-B4's
/// paired t-tests) and per-group analyses.
#[derive(Clone, Debug)]
pub struct PerUserMetrics {
    /// Model name.
    pub model: String,
    /// The evaluated users, aligned with the metric vectors.
    pub users: Vec<usize>,
    /// `(k, per-user metrics)` for each cutoff in input order.
    pub at_k: Vec<(usize, Vec<MetricPair>)>,
}

impl PerUserMetrics {
    /// Per-user metrics at cutoff `k`.
    ///
    /// # Panics
    /// Panics when `k` was not evaluated.
    pub fn at(&self, k: usize) -> &[MetricPair] {
        self.at_k
            .iter()
            .find(|&&(kk, _)| kk == k)
            .map(|(_, v)| v.as_slice())
            .unwrap_or_else(|| panic!("cutoff {k} was not evaluated"))
    }

    /// Collapses to user-averaged [`MetricReport`].
    pub fn summarize(&self) -> MetricReport {
        let denom = self.users.len().max(1) as f64;
        MetricReport {
            model: self.model.clone(),
            at_k: self
                .at_k
                .iter()
                .map(|(k, v)| {
                    let recall = v.iter().map(|m| m.recall).sum::<f64>() / denom;
                    let ndcg = v.iter().map(|m| m.ndcg).sum::<f64>() / denom;
                    (*k, MetricPair { recall, ndcg })
                })
                .collect(),
            n_users: self.users.len(),
        }
    }
}

/// Core evaluation over explicit per-user candidate pools and ground truths
/// (also used by the cold-start CIR/UCIR protocols).
///
/// Ground-truth items must be sorted and contained in the pool; users whose
/// ground truth is empty are skipped.
pub fn evaluate_pools(
    model: &dyn Recommender,
    users: &[usize],
    pools: &[Vec<u32>],
    ground_truths: &[Vec<u32>],
    ks: &[usize],
) -> MetricReport {
    evaluate_pools_per_user(model, users, pools, ground_truths, ks).summarize()
}

/// Like [`evaluate_pools`] but keeps the per-user metric vectors.
pub fn evaluate_pools_per_user(
    model: &dyn Recommender,
    users: &[usize],
    pools: &[Vec<u32>],
    ground_truths: &[Vec<u32>],
    ks: &[usize],
) -> PerUserMetrics {
    assert_eq!(users.len(), pools.len(), "one pool per user");
    assert_eq!(users.len(), ground_truths.len(), "one ground truth per user");
    assert!(!ks.is_empty(), "need at least one cutoff");
    let _span = pup_obs::span("evaluate");
    let max_k = ks.iter().copied().max().unwrap_or(0);
    let mut kept_users = Vec::new();
    let mut per_k: Vec<Vec<MetricPair>> = ks.iter().map(|_| Vec::new()).collect();
    for ((&u, pool), gt) in users.iter().zip(pools).zip(ground_truths) {
        if gt.is_empty() {
            continue;
        }
        pup_obs::counter_add("eval.users", 1);
        let scores = {
            let _t = pup_obs::time("eval", "score_items");
            model.score_items(u)
        };
        let ranked = {
            let _t = pup_obs::time("eval", "rank_candidates");
            rank_candidates(&scores, pool, max_k)
        };
        for (slot, &k) in ks.iter().enumerate() {
            per_k[slot].push(MetricPair {
                recall: recall_at_k(&ranked, gt, k),
                ndcg: ndcg_at_k(&ranked, gt, k),
            });
        }
        kept_users.push(u);
    }
    PerUserMetrics {
        model: model.name().to_string(),
        users: kept_users,
        at_k: ks.iter().copied().zip(per_k).collect(),
    }
}

/// Per-user evaluation under the standard protocol (all items minus the
/// user's train/valid positives as candidates).
pub fn evaluate_per_user(model: &dyn Recommender, split: &Split, ks: &[usize]) -> PerUserMetrics {
    let train = split.train_items_by_user();
    let valid = split.valid_items_by_user();
    let test = split.test_items_by_user();
    let mut pools = Vec::new();
    let mut truths = Vec::new();
    let mut users = Vec::new();
    for u in 0..split.n_users {
        if test[u].is_empty() {
            continue;
        }
        let exclude =
            |i: &u32| train[u].binary_search(i).is_ok() || valid[u].binary_search(i).is_ok();
        // pup-lint: allow(as-cast-truncation) — dataset ids are dense and bounded well below u32::MAX
        pools.push((0..split.n_items as u32).filter(|i| !exclude(i)).collect());
        // pup-lint: allow(clone-in-loop) — per-user ground-truth copy, once per evaluation.
        truths.push(test[u].clone());
        users.push(u);
    }
    evaluate_pools_per_user(model, &users, &pools, &truths, ks)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle that scores a fixed preference list.
    struct Fixed {
        prefs: Vec<f64>,
    }

    impl Recommender for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn score_items(&self, _user: usize) -> Vec<f64> {
            self.prefs.clone()
        }
        fn n_users(&self) -> usize {
            usize::MAX
        }
    }

    fn split(train: Vec<(usize, usize)>, test: Vec<(usize, usize)>, n_items: usize) -> Split {
        Split { n_users: 2, n_items, train, valid: vec![], test }
    }

    #[test]
    fn perfect_model_scores_one() {
        // User 0 tests on item 2; model ranks item 2 first.
        let s = split(vec![(0, 0)], vec![(0, 2)], 4);
        let m = Fixed { prefs: vec![0.0, 0.1, 9.0, 0.2] };
        let r = evaluate(&m, &s, &[1, 2]);
        assert_eq!(r.n_users, 1);
        assert_eq!(r.at(1).recall, 1.0);
        assert!((r.at(1).ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn train_items_are_excluded_from_candidates() {
        // The model loves item 0, but user 0 already bought it in training;
        // candidates exclude it, so the test item (1) lands on top.
        let s = split(vec![(0, 0)], vec![(0, 1)], 3);
        let m = Fixed { prefs: vec![99.0, 1.0, 2.0] };
        let r = evaluate(&m, &s, &[1]);
        assert_eq!(r.at(1).recall, 0.0, "item 2 outranks item 1 once 0 is excluded");
        let r2 = evaluate(&m, &s, &[2]);
        assert_eq!(r2.at(2).recall, 1.0);
    }

    #[test]
    fn users_without_test_items_are_skipped() {
        let s = split(vec![(0, 0), (1, 1)], vec![(0, 2)], 3);
        let m = Fixed { prefs: vec![1.0, 1.0, 1.0] };
        let r = evaluate(&m, &s, &[1]);
        assert_eq!(r.n_users, 1);
    }

    #[test]
    fn rank_candidates_breaks_ties_by_id() {
        let ranked = rank_candidates(&[1.0, 1.0, 2.0], &[0, 1, 2], 3);
        assert_eq!(ranked, vec![2, 0, 1]);
    }

    #[test]
    fn try_rank_candidates_rejects_out_of_range_candidate() {
        let err = try_rank_candidates(&[1.0, 2.0, 3.0], &[0, 7, 1], 2).unwrap_err();
        assert_eq!(err, ScoreError::ItemOutOfRange { item: 7, n_items: 3 });
        // The in-range call matches the panicking variant.
        assert_eq!(
            try_rank_candidates(&[1.0, 1.0, 2.0], &[0, 1, 2], 3).unwrap(),
            rank_candidates(&[1.0, 1.0, 2.0], &[0, 1, 2], 3)
        );
    }

    #[test]
    fn evaluate_users_subsets() {
        let s = split(vec![], vec![(0, 0), (1, 1)], 2);
        let m = Fixed { prefs: vec![5.0, 1.0] };
        let only0 = evaluate_users(&m, &s, &[0], &[1]);
        assert_eq!(only0.n_users, 1);
        assert_eq!(only0.at(1).recall, 1.0);
        let only1 = evaluate_users(&m, &s, &[1], &[1]);
        assert_eq!(only1.at(1).recall, 0.0, "user 1's item ranks second");
    }

    #[test]
    fn per_user_summarize_matches_evaluate() {
        let s = split(vec![(0, 0)], vec![(0, 2), (1, 1)], 4);
        let m = Fixed { prefs: vec![0.5, 3.0, 2.0, 0.1] };
        let mean = evaluate(&m, &s, &[1, 2]);
        let per_user = evaluate_per_user(&m, &s, &[1, 2]);
        let summarized = per_user.summarize();
        assert_eq!(per_user.users.len(), mean.n_users);
        for (&(k, a), &(k2, b)) in mean.at_k.iter().zip(&summarized.at_k) {
            assert_eq!(k, k2);
            assert!((a.recall - b.recall).abs() < 1e-12);
            assert!((a.ndcg - b.ndcg).abs() < 1e-12);
        }
    }

    #[test]
    fn per_user_metrics_align_with_users() {
        // User 0's test item ranks first (recall 1); user 1's ranks below
        // item 2 in her pool (recall@1 = 0).
        let s = split(vec![], vec![(0, 1), (1, 0)], 3);
        let m = Fixed { prefs: vec![1.0, 5.0, 2.0] };
        let pu = evaluate_per_user(&m, &s, &[1]);
        assert_eq!(pu.users, vec![0, 1]);
        let at1 = pu.at(1);
        assert_eq!(at1[0].recall, 1.0);
        assert_eq!(at1[1].recall, 0.0);
    }

    #[test]
    #[should_panic(expected = "not evaluated")]
    fn report_rejects_unknown_cutoff() {
        let s = split(vec![], vec![(0, 0)], 2);
        let m = Fixed { prefs: vec![1.0, 0.0] };
        let r = evaluate(&m, &s, &[1]);
        let _ = r.at(50);
    }
}
