//! # pup-eval
//!
//! Evaluation for price-aware recommendation:
//!
//! - [`metrics`]: Recall@K and NDCG@K.
//! - [`ranking`]: full-ranking top-K evaluation over all non-train items,
//!   including user-subset evaluation for the consistency analysis
//!   (Table VI).
//! - [`coldstart`]: the CIR / UCIR unexplored-category protocols (Fig. 6).
//! - [`significance`]: paired t-tests over per-user metrics (§V-B4).
//! - [`revenue`]: Revenue@K, the §VII value-aware extension.
//! - [`report`]: fixed-width tables for the experiment binaries.

pub mod coldstart;
pub mod metrics;
pub mod ranking;
pub mod report;
pub mod revenue;
pub mod significance;

pub use coldstart::{build_cold_start_task, evaluate_cold_start, ColdStartProtocol, ColdStartTask};
pub use ranking::{
    evaluate, evaluate_per_user, evaluate_pools, evaluate_pools_per_user, evaluate_users,
    rank_candidates, try_rank_candidates, MetricPair, MetricReport, PerUserMetrics,
};
pub use report::Table;
pub use revenue::{evaluate_revenue, RevenueReport};
pub use significance::{paired_t_test, TTestResult};
