//! Extended attributes: the paper's §VII generality claim in action.
//!
//! "User profiles can be added as separate nodes linked to user nodes, while
//! item features other than price and category can be integrated similarly."
//!
//! This example attaches a synthetic **brand** family to items and a **city**
//! family to users, trains PUP with and without the extra nodes, and also
//! evaluates the §VII *value-aware* extension (Revenue@K).
//!
//! ```sh
//! cargo run --release --example extended_attributes
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pup_eval::revenue::evaluate_revenue;
use pup_models::{train_bpr, AttributeTarget, ExtraAttribute, Pup};
use pup_recsys::prelude::*;

fn main() {
    let synth = yelp_like(0.02, 31);
    let pipeline = Pipeline::new(synth.dataset);
    let data = pipeline.train_data();
    println!(
        "dataset: {} users, {} items, {} categories",
        data.n_users, data.n_items, data.n_categories
    );

    // Synthetic brand/city assignments correlated with nothing — the point
    // here is the mechanics (extra node families join propagation), not a
    // lift; with real attributes the same three lines carry real signal.
    let mut rng = StdRng::seed_from_u64(9);
    let n_brands = 12;
    let brands = ExtraAttribute {
        name: "brand".into(),
        n_values: n_brands,
        values: (0..data.n_items).map(|_| rng.gen_range(0..n_brands)).collect(),
        target: AttributeTarget::Items,
    };
    let n_cities = 5;
    let cities = ExtraAttribute {
        name: "city".into(),
        n_values: n_cities,
        values: (0..data.n_users).map(|_| rng.gen_range(0..n_cities)).collect(),
        target: AttributeTarget::Users,
    };

    let tc = TrainConfig { epochs: 15, ..Default::default() };
    println!("training PUP without extras ...");
    let mut plain = Pup::new(&data, PupConfig::default());
    train_bpr(&mut plain, data.n_users, data.n_items, data.train, &tc).expect("training");

    println!("training PUP with brand + city node families ...");
    let mut extended = Pup::with_extras(&data, PupConfig::default(), &[brands, cities]);
    train_bpr(&mut extended, data.n_users, data.n_items, data.train, &tc).expect("training");

    let ks = [20usize, 50];
    let rp = pipeline.evaluate(&plain, &ks);
    let re = pipeline.evaluate(&extended, &ks);
    println!("\naccuracy (Recall@20 / Recall@50):");
    println!("  plain PUP:    {:.4} / {:.4}", rp.at(20).recall, rp.at(50).recall);
    println!("  extended PUP: {:.4} / {:.4}", re.at(20).recall, re.at(50).recall);
    println!("  (random attributes ≈ no change, by design; the graph grew by {} nodes)", 12 + 5);

    // Value-aware evaluation: how much of the users' test spending the
    // top-K recovers (paper §VII's revenue direction).
    let prices = &pipeline.dataset().item_price;
    let rev_plain = evaluate_revenue(&plain, pipeline.split(), prices, &ks);
    println!("\nrevenue recovered by top-K (Revenue-Recall@20 / @50):");
    println!(
        "  plain PUP:    {:.4} / {:.4}",
        rev_plain.revenue_recall(20),
        rev_plain.revenue_recall(50)
    );
    let rev_ext = evaluate_revenue(&extended, pipeline.split(), prices, &ks);
    println!(
        "  extended PUP: {:.4} / {:.4}",
        rev_ext.revenue_recall(20),
        rev_ext.revenue_recall(50)
    );
}
