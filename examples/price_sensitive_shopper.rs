//! Price-sensitive shopper: shows that PUP recovers a user's *category-
//! dependent* willingness to pay from behavior alone.
//!
//! We generate a dataset whose ground truth is known (each user has an
//! explicit per-category WTP), train PUP, and then compare the model's
//! learned price affinities against the planted truth — including the
//! category branch's `e_u·e_c + e_u·e_p + e_c·e_p` interpretability handle
//! from the paper's decoder design (§III-C).
//!
//! ```sh
//! cargo run --release --example price_sensitive_shopper
//! ```

use pup_data::synthetic::{generate, GeneratorConfig, PriceDistribution};
use pup_recsys::prelude::*;

fn main() {
    // A dataset with a strong price gate so the planted signal is crisp.
    let synth = generate(&GeneratorConfig {
        n_users: 300,
        n_items: 300,
        n_categories: 8,
        n_price_levels: 6,
        n_interactions: 18_000,
        price_weight: 5.0,
        consistent_user_frac: 0.5,
        price_distribution: PriceDistribution::Uniform,
        kcore: 5,
        seed: 77,
        ..Default::default()
    });
    let truth = synth.truth.clone();
    let dataset = synth.dataset;
    println!(
        "dataset: {} users, {} items, {} price levels",
        dataset.n_users, dataset.n_items, dataset.n_price_levels
    );

    // Ground-truth price level each user can afford, per category: quantize
    // the planted WTP against the category's item prices.
    let n_levels = dataset.n_price_levels;
    let pipeline = Pipeline::new(dataset);
    let cfg =
        FitConfig { train: TrainConfig { epochs: 25, ..Default::default() }, ..Default::default() };
    println!("training PUP (25 epochs) ...");
    let pup = pipeline.fit_pup(PupConfig::default(), &cfg);

    // --- Global price profile vs planted budget --------------------------
    // Rank users by their planted mean WTP and compare against the model's
    // preferred price level (argmax of e_u·e_p).
    let dataset = pipeline.dataset();
    let mut agree: Vec<(f64, usize)> = Vec::new();
    for u in 0..dataset.n_users {
        let mean_wtp: f64 = truth.user_wtp[u].iter().sum::<f64>() / truth.user_wtp[u].len() as f64;
        let affinity = pup.user_price_affinity(u);
        let preferred = affinity
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(l, _)| l)
            .unwrap_or(0);
        agree.push((mean_wtp, preferred));
    }
    // Spearman-ish check: mean preferred level of the richest vs poorest
    // user quartile.
    agree.sort_by(|a, b| a.0.total_cmp(&b.0));
    let q = agree.len() / 4;
    let poor_mean: f64 = agree[..q].iter().map(|&(_, l)| l as f64).sum::<f64>() / q as f64;
    let rich_mean: f64 =
        agree[agree.len() - q..].iter().map(|&(_, l)| l as f64).sum::<f64>() / q as f64;
    println!("\nmean preferred price level (of {n_levels}):");
    println!("  lowest-budget user quartile:  {poor_mean:.2}");
    println!("  highest-budget user quartile: {rich_mean:.2}");
    if rich_mean > poor_mean {
        println!("  => PUP's global branch recovered the planted purchasing power.");
    } else {
        println!("  (!) global branch did not separate budgets on this run.");
    }

    // --- Category-dependent awareness -------------------------------------
    // For one inconsistent user, print the category-branch affinity of her
    // cheapest-WTP category vs her most expensive one.
    let user = (0..dataset.n_users)
        .find(|&u| !truth.user_consistent[u])
        .expect("an inconsistent user exists");
    let wtp = &truth.user_wtp[user];
    let (cheap_cat, _) =
        wtp.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).unwrap_or((0, &0.0));
    let (rich_cat, _) =
        wtp.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap_or((0, &0.0));
    println!("\ninconsistent user {user}: category branch affinity by price level");
    for (label, cat) in [("cheapest-WTP", cheap_cat), ("highest-WTP", rich_cat)] {
        let row: Vec<String> = (0..n_levels)
            .map(|p| format!("{:+.2}", pup.user_category_price_affinity(user, cat, p)))
            .collect();
        println!("  {label} category {cat}: [{}]", row.join(", "));
    }
    println!(
        "\nthe two rows differ — the category branch models price sensitivity \
         per category, which a single global profile cannot."
    );
}
