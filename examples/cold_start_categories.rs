//! Cold-start on unexplored categories: the paper's §V-F scenario as a
//! runnable demo.
//!
//! Trains GC-MC (price-agnostic GCN) and PUP on the same data, then compares
//! them under the CIR protocol where every test item comes from a category
//! the user never touched during training. PUP's price nodes act as transfer
//! bridges (user → item → price → item-of-new-category).
//!
//! ```sh
//! cargo run --release --example cold_start_categories
//! ```

use pup_eval::{build_cold_start_task, evaluate_cold_start};
use pup_recsys::prelude::*;
use pup_recsys::ModelKind;

fn main() {
    let synth = yelp_like(0.02, 99);
    let pipeline = Pipeline::new(synth.dataset);
    println!(
        "dataset: {} users, {} items, {} categories",
        pipeline.dataset().n_users,
        pipeline.dataset().n_items,
        pipeline.dataset().n_categories
    );

    let cfg =
        FitConfig { train: TrainConfig { epochs: 20, ..Default::default() }, ..Default::default() };
    println!("training GC-MC and PUP (20 epochs each) ...");
    let gcmc = pipeline.fit(ModelKind::GcMc, &cfg);
    let pup = pipeline.fit(ModelKind::Pup(PupConfig::default()), &cfg);

    for protocol in [ColdStartProtocol::Cir, ColdStartProtocol::Ucir] {
        let task = build_cold_start_task(pipeline.dataset(), pipeline.split(), protocol);
        println!(
            "\n{protocol:?}: {} users buy from categories they never explored in training",
            task.users.len()
        );
        if task.users.is_empty() {
            println!("  (none at this scale — increase the dataset size)");
            continue;
        }
        let mut table = Table::for_metrics(&[20, 50]);
        for model in [gcmc.as_ref(), pup.as_ref()] {
            table.push_report(&evaluate_cold_start(model, &task, &[20, 50]));
        }
        println!("{}", table.render());

        // Show one concrete cold-start case.
        let u = task.users[0];
        let cats: std::collections::BTreeSet<usize> =
            task.truths[0].iter().map(|&i| pipeline.dataset().item_category[i as usize]).collect();
        println!(
            "  e.g. user {u}: will buy in unexplored categories {cats:?} \
             (candidate pool: {} items)",
            task.pools[0].len()
        );
    }
    println!(
        "\nexpected: PUP outranks GC-MC — price nodes connect items across \
         categories, so preference transfers to categories with no history."
    );
}
