//! Quickstart: generate a price-aware dataset, train PUP, evaluate it and
//! print recommendations for one user.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pup_recsys::prelude::*;
use pup_recsys::ModelKind;

fn main() {
    // 1. Data: a Yelp-like synthetic dataset (4 price levels, restaurant-
    //    style categories) at a small scale, plus the paper's temporal
    //    60/20/20 split.
    let synth = yelp_like(0.02, 2020);
    let stats = pup_data::stats::dataset_stats("yelp-like", &synth.dataset);
    println!(
        "dataset: {} users, {} items, {} interactions",
        stats.n_users, stats.n_items, stats.n_interactions
    );

    let pipeline = Pipeline::new(synth.dataset);

    // 2. Model: the full two-branch PUP with the paper's best 56/8
    //    embedding allocation, trained with BPR + Adam.
    let fit_cfg =
        FitConfig { train: TrainConfig { epochs: 20, ..Default::default() }, ..Default::default() };
    println!("training PUP (20 epochs) ...");
    let pup = pipeline.fit_pup(PupConfig::default(), &fit_cfg);

    // 3. Evaluation: Recall/NDCG at 20 and 50 over all unseen items.
    let report = pipeline.evaluate(&pup, &[20, 50]);
    for &(k, m) in &report.at_k {
        println!("Recall@{k} = {:.4}   NDCG@{k} = {:.4}", m.recall, m.ndcg);
    }

    // 4. A baseline for context.
    let pop = pipeline.fit(ModelKind::ItemPop, &fit_cfg);
    let pop_report = pipeline.evaluate(pop.as_ref(), &[20, 50]);
    println!(
        "ItemPop baseline: Recall@20 = {:.4} (PUP: {:.4})",
        pop_report.at(20).recall,
        report.at(20).recall
    );

    // 5. Top-5 recommendations for one user, with prices — the point of a
    //    price-aware recommender is that these match the user's budget.
    let user = 0;
    let dataset = pipeline.dataset();
    let train_items = pipeline.split().train_items_by_user();
    let scores = pup.score_items(user);
    let candidates: Vec<u32> = (0..dataset.n_items as u32)
        .filter(|i| train_items[user].binary_search(i).is_err())
        .collect();
    let top = pup_eval::ranking::rank_candidates(&scores, &candidates, 5);
    println!("\ntop-5 for user {user} (price level / category):");
    for (rank, &item) in top.iter().enumerate() {
        let i = item as usize;
        println!(
            "  {}. item {:>5}  price level {} of {}, category {:>3}",
            rank + 1,
            i,
            dataset.item_price_level[i],
            dataset.n_price_levels,
            dataset.item_category[i],
        );
    }

    // 6. The learned price profile of that user (global branch e_u · e_p).
    let affinity = pup.user_price_affinity(user);
    println!("\nuser {user} learned price-level affinity (higher = preferred):");
    for (level, a) in affinity.iter().enumerate() {
        println!("  level {level}: {a:+.3}");
    }
}
