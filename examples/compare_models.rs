//! Model bake-off: trains every method from the paper's Table II on one
//! dataset and prints a ranked comparison — a miniature of the full
//! `table2_overall` experiment for interactive use.
//!
//! ```sh
//! cargo run --release --example compare_models
//! ```

use pup_recsys::prelude::*;
use pup_recsys::ModelKind;

fn main() {
    let synth = beibei_like(0.015, 7);
    let pipeline = Pipeline::new(synth.dataset);
    println!(
        "dataset: {} users, {} items, {} train pairs\n",
        pipeline.dataset().n_users,
        pipeline.dataset().n_items,
        pipeline.split().train.len()
    );

    let cfg =
        FitConfig { train: TrainConfig { epochs: 15, ..Default::default() }, ..Default::default() };

    let ks = [20usize, 50];
    let mut results: Vec<(String, MetricPair, MetricPair)> = Vec::new();
    let mut kinds = ModelKind::table2_baselines();
    kinds.push(ModelKind::Pup(PupConfig::default()));
    for kind in kinds {
        let name = kind.name().to_string();
        print!("training {name:<8} ... ");
        let t = std::time::Instant::now();
        let model = pipeline.fit(kind, &cfg);
        let report = pipeline.evaluate(model.as_ref(), &ks);
        println!("done in {:>5.1}s", t.elapsed().as_secs_f64());
        results.push((name, report.at(20), report.at(50)));
    }

    // Rank by Recall@50.
    results.sort_by(|a, b| b.2.recall.total_cmp(&a.2.recall));
    let mut table = Table::new(&["rank", "method", "Recall@20", "NDCG@20", "Recall@50", "NDCG@50"]);
    for (rank, (name, m20, m50)) in results.iter().enumerate() {
        table.push_row(vec![
            format!("{}", rank + 1),
            name.clone(),
            format!("{:.4}", m20.recall),
            format!("{:.4}", m20.ndcg),
            format!("{:.4}", m50.recall),
            format!("{:.4}", m50.ndcg),
        ]);
    }
    println!("\n{}", table.render());
    println!("paper shape: PUP first; graph/neural methods above shallow ones; PaDQ last-ish.");
}
